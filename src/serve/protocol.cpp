#include "serve/protocol.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace turbobc::serve {
namespace {

std::string fixed6(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", x);
  return buf;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string t;
  while (in >> t) tokens.push_back(std::move(t));
  return tokens;
}

[[noreturn]] void bad(const std::string& detail) {
  throw UsageError("serve: " + detail);
}

vidx_t parse_vertex(const std::string& token, vidx_t n,
                    const std::string& what) {
  std::size_t pos = 0;
  long value = -1;
  try {
    value = std::stol(token, &pos);
  } catch (const std::exception&) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (pos != token.size()) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (value < 0 || value >= static_cast<long>(n)) {
    bad(what + " " + token + " out of range [0, " + std::to_string(n) + ")");
  }
  return static_cast<vidx_t>(value);
}

vidx_t parse_count(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  long value = -1;
  try {
    value = std::stol(token, &pos);
  } catch (const std::exception&) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (pos != token.size() || value < 0) {
    bad("expected " + what + ", got '" + token + "'");
  }
  return static_cast<vidx_t>(value);
}

double parse_real(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (pos != token.size() || !(value > 0.0) || !(value < 1.0)) {
    bad(what + " must be in (0, 1), got '" + token + "'");
  }
  return value;
}

void expect_arity(const std::vector<std::string>& tokens, std::size_t lo,
                  std::size_t hi) {
  const std::size_t args = tokens.size() - 1;
  if (args < lo || args > hi) {
    std::string want = std::to_string(lo);
    if (hi != lo) want += hi == lo + 1 ? " or " + std::to_string(hi)
                                       : ".." + std::to_string(hi);
    bad("'" + tokens[0] + "' takes " + want + " argument" +
        (hi == 1 ? "" : "s") + ", got " + std::to_string(args));
  }
}

}  // namespace

std::optional<Command> parse_command(const std::string& line, vidx_t n,
                                     vidx_t default_top, Grammar grammar) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') return std::nullopt;
  const std::string& cmd = tokens[0];
  Command c;
  if (cmd == "bc" || cmd == "top") {
    expect_arity(tokens, cmd == "top" ? 1 : 0, 1);
    c.kind = cmd == "bc" ? Command::kBc : Command::kTop;
    c.k = tokens.size() > 1 ? parse_count(tokens[1], "top count K")
                            : default_top;
    if (c.k > n) c.k = n;
  } else if (cmd == "approx") {
    expect_arity(tokens, 1, 2);
    c.kind = Command::kApprox;
    c.epsilon = parse_real(tokens[1], "epsilon");
    c.delta = tokens.size() > 2 ? parse_real(tokens[2], "delta") : 0.1;
  } else if (cmd == "insert" || cmd == "delete") {
    expect_arity(tokens, 2, 2);
    c.kind = cmd == "insert" ? Command::kInsert : Command::kDelete;
    c.u = parse_vertex(tokens[1], n, "vertex U");
    c.v = parse_vertex(tokens[2], n, "vertex V");
  } else if (cmd == "stats") {
    expect_arity(tokens, 0, 0);
    c.kind = Command::kStats;
  } else if (grammar == Grammar::kDaemon && cmd == "metrics") {
    expect_arity(tokens, 0, 0);
    c.kind = Command::kMetrics;
  } else if (grammar == Grammar::kDaemon && cmd == "shutdown") {
    expect_arity(tokens, 0, 0);
    c.kind = Command::kShutdown;
  } else {
    bad("unknown command '" + cmd +
        (grammar == Grammar::kDaemon
             ? "' (expected bc, top, approx, insert, delete, stats, "
               "metrics, or shutdown)"
             : "' (expected bc, top, approx, insert, delete, or stats)"));
  }
  return c;
}

std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t bc_digest(const std::vector<bc_t>& bc) noexcept {
  static_assert(sizeof(bc_t) == 8, "bc digest hashes raw double bytes");
  return fnv1a64(bc.data(), bc.size() * sizeof(bc_t));
}

std::string digest_hex(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string render_hello(const ServeEngine& engine, const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"hello\",\"n\":" << engine.num_vertices()
        << ",\"m\":" << engine.num_arcs() << ",\"directed\":"
        << (engine.directed() ? "true" : "false");
    if (r.wire) out << ",\"epoch\":" << engine.counters().epoch;
    out << "}\n";
  } else {
    out << "serve: n=" << engine.num_vertices() << " m=" << engine.num_arcs()
        << " directed=" << (engine.directed() ? "yes" : "no");
    if (r.wire) out << " epoch=" << engine.counters().epoch;
    out << '\n';
  }
  return out.str();
}

std::string render_bc(const ServeEngine& engine, const std::vector<bc_t>& bc,
                      const std::vector<vidx_t>& top, const QueryStats& stats,
                      std::uint64_t epoch, const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"bc\",";
    if (r.wire) {
      out << "\"epoch\":" << epoch << ",\"digest\":\""
          << digest_hex(bc_digest(bc)) << "\",";
    }
    out << "\"top\":[";
    for (std::size_t i = 0; i < top.size(); ++i) {
      const vidx_t v = top[i];
      if (i > 0) out << ',';
      out << "{\"v\":" << v << ",\"bc\":"
          << fixed6(bc[static_cast<std::size_t>(v)]) << "}";
    }
    out << "]";
    if (!r.wire) {
      out << ",\"recomputed\":" << stats.recomputed << ",\"cached\":"
          << stats.cached;
    }
    out << "}\n";
    return out.str();
  }
  out << "bc: ";
  if (r.wire) {
    out << "epoch=" << epoch << " digest=" << digest_hex(bc_digest(bc))
        << " top " << top.size() << " of " << engine.num_vertices() << "\n";
  } else {
    out << "top " << top.size() << " of " << engine.num_vertices()
        << " (recomputed " << stats.recomputed << ", cached " << stats.cached
        << ")\n";
  }
  for (std::size_t i = 0; i < top.size(); ++i) {
    const vidx_t v = top[i];
    out << "  " << (i + 1) << ". v=" << v << " bc="
        << fixed6(bc[static_cast<std::size_t>(v)]) << '\n';
  }
  return out.str();
}

std::string render_top(const std::vector<vidx_t>& top, std::uint64_t epoch,
                       const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"top\",";
    if (r.wire) out << "\"epoch\":" << epoch << ',';
    out << "\"v\":[";
    for (std::size_t i = 0; i < top.size(); ++i) {
      if (i > 0) out << ',';
      out << top[i];
    }
    out << "]}\n";
    return out.str();
  }
  out << "top:";
  if (r.wire) out << " epoch=" << epoch;
  for (const vidx_t v : top) out << ' ' << v;
  out << '\n';
  return out.str();
}

std::string render_approx(double epsilon, double delta,
                          const approx::ApproxResult& result,
                          std::uint64_t epoch, const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"approx\",";
    if (r.wire) out << "\"epoch\":" << epoch << ',';
    out << "\"epsilon\":" << fixed6(epsilon) << ",\"delta\":" << fixed6(delta)
        << ",\"sources\":" << result.sources_used << ",\"converged\":"
        << (result.converged ? "true" : "false") << ",\"max_half_width\":"
        << fixed6(result.max_half_width) << "}\n";
    return out.str();
  }
  out << "approx eps=" << fixed6(epsilon) << " delta=" << fixed6(delta)
      << ':';
  if (r.wire) out << " epoch=" << epoch;
  out << " sources=" << result.sources_used << " converged="
      << (result.converged ? "yes" : "no") << " max_half_width="
      << fixed6(result.max_half_width) << '\n';
  return out.str();
}

std::string render_update(const char* op, vidx_t u, vidx_t v,
                          const UpdateStats& stats, std::uint64_t epoch,
                          const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"update\",\"op\":\"" << op << "\",\"u\":" << u
        << ",\"v\":" << v << ",\"applied\":"
        << (stats.applied ? "true" : "false");
    if (r.wire) {
      out << ",\"epoch\":" << epoch;
    } else {
      out << ",\"invalidated\":" << stats.invalidated << ",\"valid\":"
          << stats.valid;
    }
    out << "}\n";
    return out.str();
  }
  out << op << ' ' << u << ' ' << v << ": ";
  if (r.wire) {
    out << (stats.applied ? "applied" : "no-op") << " epoch=" << epoch
        << '\n';
  } else if (stats.applied) {
    out << "applied invalidated=" << stats.invalidated << " valid="
        << stats.valid << '\n';
  } else {
    out << "no-op\n";
  }
  return out.str();
}

std::string render_stats(const ServeEngine::Counters& c,
                         const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"stats\",\"epoch\":" << c.epoch << ",\"queries\":"
        << c.queries << ",\"updates\":" << c.updates << ",\"noop\":"
        << c.noop_updates << ",\"recomputed\":" << c.recomputed
        << ",\"cached\":" << c.served_cached << ",\"invalidated\":"
        << c.invalidated << ",\"device_seconds\":" << fixed6(c.device_seconds)
        << "}\n";
    return out.str();
  }
  out << "stats: epoch=" << c.epoch << " queries=" << c.queries
      << " updates=" << c.updates << " noop=" << c.noop_updates
      << " recomputed=" << c.recomputed << " cached=" << c.served_cached
      << " invalidated=" << c.invalidated << " device_s="
      << fixed6(c.device_seconds) << '\n';
  return out.str();
}

std::string render_error(const std::string& detail, const RenderOptions& r) {
  if (r.json) {
    return "{\"event\":\"error\",\"detail\":\"" + json_escape(detail) +
           "\"}\n";
  }
  return "error: " + detail + "\n";
}

std::string render_busy(std::size_t pending, std::size_t limit,
                        const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"busy\",\"pending\":" << pending << ",\"limit\":"
        << limit << "}\n";
  } else {
    out << "busy: update queue full (pending=" << pending << " limit="
        << limit << "), retry\n";
  }
  return out.str();
}

std::string render_bye(std::uint64_t epoch, const RenderOptions& r) {
  std::ostringstream out;
  if (r.json) {
    out << "{\"event\":\"bye\",\"epoch\":" << epoch << "}\n";
  } else {
    out << "bye: epoch=" << epoch << '\n';
  }
  return out.str();
}

}  // namespace turbobc::serve
