#include "serve/session.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace turbobc::serve {
namespace {

/// Parse the whole script up front (session contract: a malformed line
/// aborts with nothing computed or printed).
std::vector<Command> parse_script(std::istream& script, vidx_t n,
                                  vidx_t default_top) {
  std::vector<Command> commands;
  std::string line;
  while (std::getline(script, line)) {
    if (const auto c = parse_command(line, n, default_top, Grammar::kSession)) {
      commands.push_back(*c);
    }
  }
  return commands;
}

}  // namespace

ServeEngine::Counters run_session(graph::EdgeList graph,
                                  const SessionOptions& options,
                                  std::istream& script, std::ostream& out) {
  ServeEngine engine(std::move(graph), options.engine);
  const std::vector<Command> commands =
      parse_script(script, engine.num_vertices(), options.top);

  const RenderOptions render{options.json, options.wire};
  out << render_hello(engine, render);
  for (const Command& c : commands) {
    switch (c.kind) {
      case Command::kBc: {
        QueryStats stats;
        const std::vector<bc_t>& bc = engine.query_bc(&stats);
        out << render_bc(engine, bc, rank_vertices(bc, c.k), stats,
                         engine.counters().epoch, render);
        break;
      }
      case Command::kTop:
        out << render_top(engine.query_top(c.k, nullptr),
                          engine.counters().epoch, render);
        break;
      case Command::kApprox:
        out << render_approx(c.epsilon, c.delta,
                             engine.query_approx(c.epsilon, c.delta, nullptr),
                             engine.counters().epoch, render);
        break;
      case Command::kInsert:
      case Command::kDelete: {
        // Apply FIRST: wire responses are stamped with the post-update epoch
        // (the graph version the response describes).
        const bool ins = c.kind == Command::kInsert;
        const UpdateStats stats = ins ? engine.insert_edge(c.u, c.v)
                                      : engine.remove_edge(c.u, c.v);
        out << render_update(ins ? "insert" : "delete", c.u, c.v, stats,
                             engine.counters().epoch, render);
        break;
      }
      case Command::kStats:
        out << render_stats(engine.counters(), render);
        break;
      case Command::kMetrics:
      case Command::kShutdown:
        break;  // not in the session grammar; parse_command never yields them
    }
  }
  return engine.counters();
}

}  // namespace turbobc::serve
