#include "serve/session.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace turbobc::serve {
namespace {

std::string fixed6(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", x);
  return buf;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string t;
  while (in >> t) tokens.push_back(std::move(t));
  return tokens;
}

[[noreturn]] void bad(const std::string& detail) {
  throw UsageError("serve: " + detail);
}

vidx_t parse_vertex(const std::string& token, vidx_t n,
                    const std::string& what) {
  std::size_t pos = 0;
  long value = -1;
  try {
    value = std::stol(token, &pos);
  } catch (const std::exception&) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (pos != token.size()) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (value < 0 || value >= static_cast<long>(n)) {
    bad(what + " " + token + " out of range [0, " + std::to_string(n) + ")");
  }
  return static_cast<vidx_t>(value);
}

vidx_t parse_count(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  long value = -1;
  try {
    value = std::stol(token, &pos);
  } catch (const std::exception&) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (pos != token.size() || value < 0) {
    bad("expected " + what + ", got '" + token + "'");
  }
  return static_cast<vidx_t>(value);
}

double parse_real(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    bad("expected " + what + ", got '" + token + "'");
  }
  if (pos != token.size() || !(value > 0.0) || !(value < 1.0)) {
    bad(what + " must be in (0, 1), got '" + token + "'");
  }
  return value;
}

void expect_arity(const std::vector<std::string>& tokens, std::size_t lo,
                  std::size_t hi) {
  const std::size_t args = tokens.size() - 1;
  if (args < lo || args > hi) {
    std::string want = std::to_string(lo);
    if (hi != lo) want += hi == lo + 1 ? " or " + std::to_string(hi)
                                       : ".." + std::to_string(hi);
    bad("'" + tokens[0] + "' takes " + want + " argument" +
        (hi == 1 ? "" : "s") + ", got " + std::to_string(args));
  }
}

class Transcript {
 public:
  Transcript(std::ostream& out, bool json) : out_(out), json_(json) {}

  void hello(const ServeEngine& engine) {
    if (json_) {
      out_ << "{\"event\":\"hello\",\"n\":" << engine.num_vertices()
           << ",\"m\":" << engine.num_arcs() << ",\"directed\":"
           << (engine.directed() ? "true" : "false") << "}\n";
    } else {
      out_ << "serve: n=" << engine.num_vertices() << " m="
           << engine.num_arcs() << " directed="
           << (engine.directed() ? "yes" : "no") << '\n';
    }
  }

  void bc(const ServeEngine& engine, const std::vector<bc_t>& bc,
          const std::vector<vidx_t>& top, const QueryStats& stats) {
    if (json_) {
      out_ << "{\"event\":\"bc\",\"top\":[";
      for (std::size_t i = 0; i < top.size(); ++i) {
        const vidx_t v = top[i];
        if (i > 0) out_ << ',';
        out_ << "{\"v\":" << v << ",\"bc\":"
             << fixed6(bc[static_cast<std::size_t>(v)]) << "}";
      }
      out_ << "],\"recomputed\":" << stats.recomputed << ",\"cached\":"
           << stats.cached << "}\n";
      return;
    }
    out_ << "bc: top " << top.size() << " of " << engine.num_vertices()
         << " (recomputed " << stats.recomputed << ", cached "
         << stats.cached << ")\n";
    for (std::size_t i = 0; i < top.size(); ++i) {
      const vidx_t v = top[i];
      out_ << "  " << (i + 1) << ". v=" << v << " bc="
           << fixed6(bc[static_cast<std::size_t>(v)]) << '\n';
    }
  }

  void top(const std::vector<vidx_t>& top) {
    if (json_) {
      out_ << "{\"event\":\"top\",\"v\":[";
      for (std::size_t i = 0; i < top.size(); ++i) {
        if (i > 0) out_ << ',';
        out_ << top[i];
      }
      out_ << "]}\n";
      return;
    }
    out_ << "top:";
    for (const vidx_t v : top) out_ << ' ' << v;
    out_ << '\n';
  }

  void approx(double epsilon, double delta,
              const approx::ApproxResult& result) {
    if (json_) {
      out_ << "{\"event\":\"approx\",\"epsilon\":" << fixed6(epsilon)
           << ",\"delta\":" << fixed6(delta) << ",\"sources\":"
           << result.sources_used << ",\"converged\":"
           << (result.converged ? "true" : "false")
           << ",\"max_half_width\":" << fixed6(result.max_half_width)
           << "}\n";
      return;
    }
    out_ << "approx eps=" << fixed6(epsilon) << " delta=" << fixed6(delta)
         << ": sources=" << result.sources_used << " converged="
         << (result.converged ? "yes" : "no")
         << " max_half_width=" << fixed6(result.max_half_width) << '\n';
  }

  void update(const char* op, vidx_t u, vidx_t v, const UpdateStats& stats) {
    if (json_) {
      out_ << "{\"event\":\"update\",\"op\":\"" << op << "\",\"u\":" << u
           << ",\"v\":" << v << ",\"applied\":"
           << (stats.applied ? "true" : "false") << ",\"invalidated\":"
           << stats.invalidated << ",\"valid\":" << stats.valid << "}\n";
      return;
    }
    out_ << op << ' ' << u << ' ' << v << ": ";
    if (stats.applied) {
      out_ << "applied invalidated=" << stats.invalidated
           << " valid=" << stats.valid << '\n';
    } else {
      out_ << "no-op\n";
    }
  }

  void stats(const ServeEngine::Counters& c) {
    if (json_) {
      out_ << "{\"event\":\"stats\",\"epoch\":" << c.epoch << ",\"queries\":"
           << c.queries << ",\"updates\":" << c.updates << ",\"noop\":"
           << c.noop_updates << ",\"recomputed\":" << c.recomputed
           << ",\"cached\":" << c.served_cached << ",\"invalidated\":"
           << c.invalidated << ",\"device_seconds\":"
           << fixed6(c.device_seconds) << "}\n";
      return;
    }
    out_ << "stats: epoch=" << c.epoch << " queries=" << c.queries
         << " updates=" << c.updates << " noop=" << c.noop_updates
         << " recomputed=" << c.recomputed << " cached=" << c.served_cached
         << " invalidated=" << c.invalidated
         << " device_s=" << fixed6(c.device_seconds) << '\n';
  }

 private:
  std::ostream& out_;
  bool json_;
};

/// A parsed script line. Parsing is complete before execution starts, so a
/// malformed line aborts the session with nothing computed or printed.
struct Command {
  enum Kind { kBc, kTop, kApprox, kInsert, kDelete, kStats } kind = kBc;
  vidx_t k = 0;  // kBc / kTop
  vidx_t u = 0, v = 0;
  double epsilon = 0.0, delta = 0.0;
};

std::vector<Command> parse_script(std::istream& script, vidx_t n,
                                  vidx_t default_top) {
  std::vector<Command> commands;
  std::string line;
  while (std::getline(script, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& cmd = tokens[0];
    Command c;
    if (cmd == "bc" || cmd == "top") {
      expect_arity(tokens, cmd == "top" ? 1 : 0, 1);
      c.kind = cmd == "bc" ? Command::kBc : Command::kTop;
      c.k = tokens.size() > 1 ? parse_count(tokens[1], "top count K")
                              : default_top;
      if (c.k > n) c.k = n;
    } else if (cmd == "approx") {
      expect_arity(tokens, 1, 2);
      c.kind = Command::kApprox;
      c.epsilon = parse_real(tokens[1], "epsilon");
      c.delta = tokens.size() > 2 ? parse_real(tokens[2], "delta") : 0.1;
    } else if (cmd == "insert" || cmd == "delete") {
      expect_arity(tokens, 2, 2);
      c.kind = cmd == "insert" ? Command::kInsert : Command::kDelete;
      c.u = parse_vertex(tokens[1], n, "vertex U");
      c.v = parse_vertex(tokens[2], n, "vertex V");
    } else if (cmd == "stats") {
      expect_arity(tokens, 0, 0);
      c.kind = Command::kStats;
    } else {
      bad("unknown command '" + cmd +
          "' (expected bc, top, approx, insert, delete, or stats)");
    }
    commands.push_back(c);
  }
  return commands;
}

}  // namespace

ServeEngine::Counters run_session(graph::EdgeList graph,
                                  const SessionOptions& options,
                                  std::istream& script, std::ostream& out) {
  ServeEngine engine(std::move(graph), options.engine);
  const std::vector<Command> commands =
      parse_script(script, engine.num_vertices(), options.top);

  Transcript transcript(out, options.json);
  transcript.hello(engine);
  for (const Command& c : commands) {
    switch (c.kind) {
      case Command::kBc: {
        QueryStats stats;
        const std::vector<bc_t>& bc = engine.query_bc(&stats);
        transcript.bc(engine, bc, rank_vertices(bc, c.k), stats);
        break;
      }
      case Command::kTop: {
        transcript.top(engine.query_top(c.k, nullptr));
        break;
      }
      case Command::kApprox:
        transcript.approx(c.epsilon, c.delta,
                          engine.query_approx(c.epsilon, c.delta, nullptr));
        break;
      case Command::kInsert:
        transcript.update("insert", c.u, c.v, engine.insert_edge(c.u, c.v));
        break;
      case Command::kDelete:
        transcript.update("delete", c.u, c.v, engine.remove_edge(c.u, c.v));
        break;
      case Command::kStats:
        transcript.stats(engine.counters());
        break;
    }
  }
  return engine.counters();
}

}  // namespace turbobc::serve
