// Dynamic-graph BC serving engine: load a graph once, answer a stream of
// BC / top-k / approx queries interleaved with edge inserts and deletes,
// recomputing only what an update can actually touch.
//
// Cache layout (host side — the simulated device footprint per recompute
// stays the paper's 7n + m words):
//   per source s: the dependency contribution block c_s (n doubles, exactly
//   TurboBC::run_single_source(s).bc — halved on undirected graphs, zero at
//   v == s) and the BFS depth vector d(s, ·) (n int32, -1 = unreachable).
//   12 n bytes per source, n(12n) total when fully warm.
//
// Invalidation — the BFS-distance cone test. An edge update on (u, v) can
// change source s's SSSP DAG (distances, path counts, or DAG arcs) only in
// these cases, evaluated against the PRE-update depths d = d(s, ·):
//
//   directed insert   d(s,u) finite and (v unreachable or d(s,v) > d(s,u))
//                     — the new arc shortens v (gap >= 2), adds shortest
//                     paths (gap == 1), or first reaches v; arcs into
//                     equal-or-lower levels sit outside every DAG.
//   directed delete   d(s,u) finite and d(s,v) == d(s,u) + 1 — the arc is
//                     removed FROM the DAG; any other arc never carried a
//                     shortest path.
//   undirected        either orientation qualifies above, which collapses
//   (insert+delete)   to d(s,u) != d(s,v) (two unreachables compare equal:
//                     an edge inside a foreign component cannot touch s).
//
// Every other source keeps a BYTE-identical block: its distances and sigma
// are unchanged (integer BFS), and the backward float gather only gains or
// loses exact-zero terms from the off-DAG arc — adding or dropping +0.0
// against the non-negative partial sums never changes a bit. This refines
// the |d(s,u) - d(s,v)| <= 1 candidate rule: a shortcut insert with gap >= 2
// DOES affect s (it must invalidate), while gap == 0 never does.
//
// Determinism. Full-BC queries fold the cached blocks through
// TurboBC::fold_source_blocks — the same block_plan grouping and left-fold
// order run_exact uses — so a served BC vector is bit-identical to a scratch
// TurboBC::run_exact() on the current graph, at any --threads (recomputes
// run inline on the engine's own device; the fold is sequential host math).
// Approx queries run the PR 3 adaptive Hoeffding estimator on the current
// graph, with the component sampler's map held in a graph::ComponentCache
// that every edge update invalidates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "approx/driver.hpp"
#include "common/types.hpp"
#include "core/turbobc.hpp"
#include "core/variant.hpp"
#include "gpusim/device.hpp"
#include "graph/components.hpp"
#include "graph/csc.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::serve {

enum class UpdateKind { kInsert, kDelete };

/// The cone test (exposed for the property suite): can an update of `kind`
/// on edge (u, v) change source s's dependency block, given the PRE-update
/// depths du = d(s,u), dv = d(s,v) (-1 = unreachable)? `directed` is the
/// graph's orientation flag; undirected updates carry both arcs. Sound by
/// construction: false guarantees the recomputed block is byte-identical.
bool update_affects_source(vidx_t du, vidx_t dv, UpdateKind kind,
                           bool directed);

/// The k highest-BC vertices of `bc`, ties broken by lower vertex id — a
/// total order, so the ranking (and every transcript built on it) is
/// deterministic even when BC values collide.
std::vector<vidx_t> rank_vertices(const std::vector<bc_t>& bc, vidx_t k);

struct ServeOptions {
  bc::Variant variant = bc::Variant::kScCsc;
  bc::Advance advance = bc::Advance::kPush;
  /// Pivot distribution of approx queries. Component (the default) is the
  /// one that exercises the ComponentCache invalidation contract.
  approx::SamplerKind sampler = approx::SamplerKind::kComponent;
  /// Seed of every approx query's pivot stream (queries are repeatable: the
  /// same query on the same epoch returns bit-identical results).
  std::uint64_t seed = 1;
};

/// What one edge update did.
struct UpdateStats {
  bool applied = false;     ///< false: no-op (insert present / delete absent)
  vidx_t invalidated = 0;   ///< warm blocks dropped by the cone test
  vidx_t valid = 0;         ///< warm blocks surviving the update
};

/// What one query cost.
struct QueryStats {
  vidx_t recomputed = 0;          ///< cache misses paid by this query
  vidx_t cached = 0;              ///< blocks served straight from cache
  double device_seconds = 0.0;    ///< modeled seconds charged to this query
};

class ServeEngine {
 public:
  /// Canonicalizes and holds the graph; nothing is computed until the first
  /// query (cold cache).
  explicit ServeEngine(graph::EdgeList graph, ServeOptions options = {});

  const graph::EdgeList& graph() const noexcept { return graph_; }
  vidx_t num_vertices() const noexcept { return graph_.num_vertices(); }
  eidx_t num_arcs() const noexcept { return graph_.num_arcs(); }
  bool directed() const noexcept { return graph_.directed(); }
  const ServeOptions& options() const noexcept { return options_; }

  /// Apply one edge update (undirected graphs insert/remove both arcs;
  /// self-loops are no-ops — the canonical graph never holds them). Runs the
  /// cone test against every warm block, drops the affected ones, advances
  /// the epoch, and invalidates the component cache. Endpoints must be in
  /// [0, n).
  UpdateStats apply_update(UpdateKind kind, vidx_t u, vidx_t v);
  UpdateStats insert_edge(vidx_t u, vidx_t v) {
    return apply_update(UpdateKind::kInsert, u, v);
  }
  UpdateStats remove_edge(vidx_t u, vidx_t v) {
    return apply_update(UpdateKind::kDelete, u, v);
  }

  /// Full exact BC of the current graph — bit-identical to a scratch
  /// TurboBC::run_exact() with the same options. Recomputes only cold
  /// blocks; the returned reference is valid until the next update.
  const std::vector<bc_t>& query_bc(QueryStats* stats = nullptr);

  /// The k highest-BC vertices of query_bc() under rank_vertices' total
  /// order (ties broken by lower vertex id, so transcripts reproduce).
  std::vector<vidx_t> query_top(vidx_t k, QueryStats* stats = nullptr);

  /// Adaptive approximate BC on the current graph to the (epsilon, delta)
  /// target (src/approx/ wave driver), pivots drawn by options().sampler
  /// with the cached component map. Bit-identical per epoch at any pool
  /// width.
  approx::ApproxResult query_approx(double epsilon, double delta,
                                    QueryStats* stats = nullptr);

  /// The fully-resolved options query_approx would run with — sampler,
  /// seed, variant, advance, and (for the component sampler) a pointer to
  /// the freshly-warmed component map. The daemon scheduler calls this under
  /// its engine lock, then runs approx::run_adaptive on a PRIVATE device
  /// outside the lock: the estimator only reads graph() and the component
  /// map, both frozen while the epoch's shared lock is held, so approx
  /// queries are the daemon's genuinely concurrent compute path. Pair with
  /// note_query() to land the cost on the counters afterwards.
  approx::ApproxOptions make_approx_options(double epsilon, double delta);

  /// Account one externally-executed query (see make_approx_options).
  void note_query(double device_seconds);

  // ---- introspection (tests, oracle, bench) ----

  /// Is source s's block warm (served without recompute)?
  bool block_valid(vidx_t s) const;
  vidx_t valid_blocks() const;

  /// Source s's dependency contribution block / depth vector, recomputing
  /// if cold (the recompute cost lands on the running counters, not on any
  /// QueryStats).
  const std::vector<bc_t>& block(vidx_t s);
  const std::vector<vidx_t>& depths(vidx_t s);

  /// Label sweeps the component cache has run (see graph::ComponentCache).
  std::size_t component_recomputes() const noexcept {
    return components_.recomputes();
  }

  struct Counters {
    std::uint64_t queries = 0;        ///< bc/top/approx queries answered
    std::uint64_t updates = 0;        ///< updates applied (graph changed)
    std::uint64_t noop_updates = 0;   ///< updates that were no-ops
    std::uint64_t invalidated = 0;    ///< blocks dropped by cone tests
    std::uint64_t recomputed = 0;     ///< per-source recomputes paid
    std::uint64_t served_cached = 0;  ///< block reads served from cache
    std::uint64_t epoch = 0;          ///< graph version (updates applied)
    double device_seconds = 0.0;      ///< modeled seconds across all queries
  };
  const Counters& counters() const noexcept { return counters_; }

 private:
  struct Block {
    bool valid = false;
    std::vector<bc_t> delta;
    std::vector<vidx_t> depth;
  };

  /// The per-epoch engine (device + uploaded graph), built lazily on the
  /// first recompute after construction or an update.
  bc::TurboBC& engine();
  /// Host CSC of the current graph (depth recomputes), built lazily.
  const graph::CscGraph& csc();
  /// Warm block s, charging a recompute to `stats` (nullable) on a miss.
  Block& ensure_block(vidx_t s, QueryStats* stats);

  graph::EdgeList graph_;
  ServeOptions options_;
  std::vector<Block> blocks_;
  std::vector<bc_t> bc_;   ///< folded full BC, valid while bc_valid_
  bool bc_valid_ = false;
  std::unique_ptr<sim::Device> device_;
  std::unique_ptr<bc::TurboBC> engine_;
  std::optional<graph::CscGraph> csc_;
  graph::ComponentCache components_;
  Counters counters_;
};

}  // namespace turbobc::serve
