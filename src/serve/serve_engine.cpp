#include "serve/serve_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "graph/bfs_probe.hpp"

namespace turbobc::serve {

bool update_affects_source(vidx_t du, vidx_t dv, UpdateKind kind,
                           bool directed) {
  if (!directed) return du != dv;
  if (du == kInvalidVertex) return false;  // s never reaches the arc's tail
  if (kind == UpdateKind::kInsert) {
    // New shortest paths through (u, v) need d(s,v) >= d(s,u) + 1 (or v
    // previously unreachable). An arc into the same or a lower level can
    // never lie on a shortest path from s.
    return dv == kInvalidVertex || dv > du;
  }
  // Delete: only arcs inside the DAG — exactly one level down — carried
  // shortest paths whose loss can change distances, sigma, or delta.
  return dv == du + 1;
}

ServeEngine::ServeEngine(graph::EdgeList graph, ServeOptions options)
    : graph_(std::move(graph)), options_(options) {
  graph_.canonicalize();
  blocks_.resize(static_cast<std::size_t>(graph_.num_vertices()));
}

bc::TurboBC& ServeEngine::engine() {
  if (!engine_) {
    device_ = std::make_unique<sim::Device>();
    bc::BcOptions opt;
    opt.variant = options_.variant;
    opt.advance = options_.advance;
    engine_ = std::make_unique<bc::TurboBC>(*device_, graph_, opt);
  }
  return *engine_;
}

const graph::CscGraph& ServeEngine::csc() {
  if (!csc_.has_value()) csc_.emplace(graph::CscGraph::from_edges(graph_));
  return *csc_;
}

ServeEngine::Block& ServeEngine::ensure_block(vidx_t s, QueryStats* stats) {
  Block& b = blocks_[static_cast<std::size_t>(s)];
  if (b.valid) {
    ++counters_.served_cached;
    if (stats != nullptr) ++stats->cached;
    return b;
  }
  bc::BcResult r = engine().run_single_source(s);
  b.delta = std::move(r.bc);
  b.depth = graph::bfs_reference(csc(), s).depth;
  b.valid = true;
  ++counters_.recomputed;
  counters_.device_seconds += r.device_seconds;
  if (stats != nullptr) {
    ++stats->recomputed;
    stats->device_seconds += r.device_seconds;
  }
  return b;
}

UpdateStats ServeEngine::apply_update(UpdateKind kind, vidx_t u, vidx_t v) {
  const vidx_t n = graph_.num_vertices();
  TBC_CHECK(u >= 0 && u < n && v >= 0 && v < n,
            "update endpoint out of range");
  UpdateStats stats;

  // No-op detection against the canonical graph: inserting a present edge,
  // deleting an absent one, or touching a self-loop leaves every block (and
  // the epoch) untouched.
  const bool present = graph_.has_edge(u, v);
  const bool noop = u == v || (kind == UpdateKind::kInsert ? present
                                                           : !present);
  if (noop) {
    ++counters_.noop_updates;
    for (const Block& b : blocks_) {
      if (b.valid) ++stats.valid;
    }
    return stats;
  }

  // Cone-test every warm block against its PRE-update depths.
  const bool directed = graph_.directed();
  for (Block& b : blocks_) {
    if (!b.valid) continue;
    const vidx_t du = b.depth[static_cast<std::size_t>(u)];
    const vidx_t dv = b.depth[static_cast<std::size_t>(v)];
    if (update_affects_source(du, dv, kind, directed)) {
      b.valid = false;
      b.delta.clear();
      b.depth.clear();
      ++stats.invalidated;
    } else {
      ++stats.valid;
    }
  }

  if (kind == UpdateKind::kInsert) {
    graph_.add_edge(u, v);
    if (!directed) graph_.add_edge(v, u);
  } else {
    graph_.remove_edge(u, v);
    if (!directed) graph_.remove_edge(v, u);
  }
  graph_.canonicalize();

  // New epoch: the uploaded device graph, host CSC, folded BC, and the
  // component map are all stale.
  engine_.reset();
  device_.reset();
  csc_.reset();
  bc_valid_ = false;
  components_.invalidate();
  stats.applied = true;
  ++counters_.updates;
  ++counters_.epoch;
  counters_.invalidated += static_cast<std::uint64_t>(stats.invalidated);
  return stats;
}

const std::vector<bc_t>& ServeEngine::query_bc(QueryStats* stats) {
  ++counters_.queries;
  const vidx_t n = graph_.num_vertices();
  if (bc_valid_) {
    // The fold result is cached too; count the blocks as cache hits so the
    // stats still describe what answering the query would have cost.
    counters_.served_cached += static_cast<std::uint64_t>(n);
    if (stats != nullptr) stats->cached += n;
    return bc_;
  }
  std::vector<const std::vector<bc_t>*> contributions;
  contributions.reserve(static_cast<std::size_t>(n));
  for (vidx_t s = 0; s < n; ++s) {
    contributions.push_back(&ensure_block(s, stats).delta);
  }
  bc_ = bc::TurboBC::fold_source_blocks(contributions,
                                        static_cast<std::size_t>(n));
  bc_valid_ = true;
  return bc_;
}

std::vector<vidx_t> rank_vertices(const std::vector<bc_t>& bc, vidx_t k) {
  const vidx_t n = static_cast<vidx_t>(bc.size());
  std::vector<vidx_t> order(bc.size());
  for (vidx_t v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&bc](vidx_t a, vidx_t b) {
    const bc_t ba = bc[static_cast<std::size_t>(a)];
    const bc_t bb = bc[static_cast<std::size_t>(b)];
    if (ba != bb) return ba > bb;
    return a < b;
  });
  if (k < 0) k = 0;
  if (k < n) order.resize(static_cast<std::size_t>(k));
  return order;
}

std::vector<vidx_t> ServeEngine::query_top(vidx_t k, QueryStats* stats) {
  return rank_vertices(query_bc(stats), k);
}

approx::ApproxOptions ServeEngine::make_approx_options(double epsilon,
                                                       double delta) {
  TBC_CHECK(graph_.num_vertices() > 0, "approx query on an empty graph");
  approx::ApproxOptions opt;
  opt.epsilon = epsilon;
  opt.delta = delta;
  opt.seed = options_.seed;
  opt.sampler = options_.sampler;
  opt.variant = options_.variant;
  opt.advance = options_.advance;
  if (options_.sampler == approx::SamplerKind::kComponent) {
    opt.components = &components_.get(graph_);
  }
  return opt;
}

void ServeEngine::note_query(double device_seconds) {
  ++counters_.queries;
  counters_.device_seconds += device_seconds;
}

approx::ApproxResult ServeEngine::query_approx(double epsilon, double delta,
                                               QueryStats* stats) {
  const approx::ApproxOptions opt = make_approx_options(epsilon, delta);
  // Approx queries run on their own device: the estimator never touches the
  // cached blocks, so the serving cache stays warm across them.
  sim::Device device;
  approx::ApproxResult result = approx::run_adaptive(device, graph_, opt);
  note_query(result.device_seconds);
  if (stats != nullptr) stats->device_seconds += result.device_seconds;
  return result;
}

bool ServeEngine::block_valid(vidx_t s) const {
  TBC_CHECK(s >= 0 && s < graph_.num_vertices(), "source out of range");
  return blocks_[static_cast<std::size_t>(s)].valid;
}

vidx_t ServeEngine::valid_blocks() const {
  vidx_t count = 0;
  for (const Block& b : blocks_) {
    if (b.valid) ++count;
  }
  return count;
}

const std::vector<bc_t>& ServeEngine::block(vidx_t s) {
  TBC_CHECK(s >= 0 && s < graph_.num_vertices(), "source out of range");
  return ensure_block(s, nullptr).delta;
}

const std::vector<vidx_t>& ServeEngine::depths(vidx_t s) {
  TBC_CHECK(s >= 0 && s < graph_.num_vertices(), "source out of range");
  return ensure_block(s, nullptr).depth;
}

}  // namespace turbobc::serve
