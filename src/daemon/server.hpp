// The serve daemon: a TCP / Unix-domain-socket front-end speaking the serve
// session language (serve/protocol.hpp, Grammar::kDaemon) over newline-
// delimited frames, one thread per connection, all connections multiplexed
// onto one Scheduler (reader-writer locking, bounded update admission,
// epoch-stamped wire responses).
//
// Connection protocol: on accept the server sends one hello line, then
// answers one response per non-blank non-comment request line. Malformed
// lines get an `error` response and the connection continues; a line beyond
// max_line gets an `error` response and the connection CLOSES (framing is
// lost). `shutdown` answers `bye` and initiates a graceful stop: the
// listener closes, every other connection's read side is shut down so its
// loop drains the request in flight and exits, and stop() joins everything.
// Abrupt client disconnects (EOF, reset, vanished peer mid-response) just
// end that connection.
//
// A single connection replaying a script produces a byte-identical
// transcript to `turbobc_cli serve --wire --script` on the same graph —
// the daemon-smoke CI stage and the qa daemon_agreement invariant pin it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/scheduler.hpp"
#include "daemon/socket.hpp"
#include "graph/edge_list.hpp"
#include "serve/serve_engine.hpp"

namespace turbobc::daemon {

struct DaemonOptions {
  std::string listen;        ///< HOST:PORT or unix:PATH
  bool json = false;         ///< JSON Lines responses
  vidx_t top = 5;            ///< default K of a bare `bc`
  std::size_t max_line = 4096;  ///< oversized-frame guard (bytes)
  Scheduler::Options sched;
  serve::ServeOptions engine;
};

class DaemonServer {
 public:
  /// Canonicalizes the graph into the scheduler; nothing listens yet.
  DaemonServer(graph::EdgeList graph, const DaemonOptions& options);
  ~DaemonServer();

  /// Bind + listen + spawn the accept thread. Throws Error on bind failure.
  void start();

  /// The bound address (an ephemeral TCP :0 resolves to the real port).
  const SocketAddr& bound() const noexcept { return bound_; }

  /// Block until a `shutdown` command arrives (or stop() is called from
  /// another thread), then drain and join. Returns once fully stopped.
  void wait();

  /// Graceful stop: close the listener, half-close every connection's read
  /// side, drain in-flight requests, join all threads. Idempotent; safe
  /// from any thread except a connection thread.
  void stop();

  Scheduler& scheduler() noexcept { return scheduler_; }
  const DaemonOptions& options() const noexcept { return options_; }

  /// Connections accepted over the server's lifetime.
  std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void request_stop();

  DaemonOptions options_;
  serve::RenderOptions render_;
  Scheduler scheduler_;

  int listen_fd_ = -1;
  SocketAddr bound_;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;  // guarded by conn_mu_
  std::vector<int> conn_fds_;              // open connections, by fd

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;  // guarded by stop_mu_
  bool stopped_ = false;
};

}  // namespace turbobc::daemon
