// Reader-writer scheduler over ServeEngine — the concurrency core of the
// serve daemon. This is the repo's first REAL (not modeled) concurrency on
// the query path, so the locking contract is spelled out:
//
//   epoch_mu_ (shared_mutex)  Readers-vs-writers. Every query holds it
//     shared; insert/delete hold it exclusive. While any shared holder
//     exists the graph, the component map, and the epoch are frozen.
//   engine_mu_ (mutex, under a shared epoch_mu_)  ServeEngine is not
//     internally thread-safe — query paths warm blocks and bump counters —
//     so every call into the engine serializes here. bc/top/stats queries
//     run entirely under it; approx queries only build their options under
//     it (pre-warming the component map via make_approx_options), then run
//     the estimator on a PRIVATE sim::Device outside, so approx is the
//     genuinely concurrent compute path (fanned across sim::ExecutorPool,
//     whose run_job serializes concurrent submitters).
//
// Updates ride a ticketed admission queue: at most update_queue_limit
// updates may be admitted (queued on the exclusive lock) at once; the
// excess gets an explicit BUSY response immediately — backpressure, never a
// silent drop. Each applied update is appended, under the exclusive lock,
// to an epoch-ordered update log that bench_daemon and the daemon_agreement
// oracle replay serially from scratch to gate served digests per epoch.
//
// Metrics plane: real wall-clock latency quantiles (log2-bucketed micros),
// engine cache hit ratio, queue depth, and a MODELED reader-lane clock —
// each query's modeled device seconds are assigned to the least-busy of
// reader_lanes lanes, updates barrier all lanes — whose makespan is the
// modeled serving time the bench's throughput-scaling gate compares at 1 vs
// 4 lanes (this box has one core; wall-clock scaling is measured by proxy
// through the same cost model every other bench gates on).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "hybrid/ledger.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_engine.hpp"

namespace turbobc::daemon {

/// Upper bound of the log2 bucket holding the q-quantile of the histogram
/// (0 when empty; the rank is the CEILING of q * total, so e.g. the p50 of
/// 3 samples is the 2nd — truncating here under-reported every quantile
/// whose rank was fractional). Bucket 63 is the overflow bucket — the
/// fill loop clamps there, so it has no power-of-two upper bound and the
/// quantile reports ~0 ("off the histogram") when it lands inside.
/// Exposed for the daemon metrics unit tests.
std::uint64_t bucket_quantile(const std::uint64_t (&buckets)[64], double q);

class Scheduler {
 public:
  struct Options {
    /// Updates admitted (applying or queued on the exclusive lock) before
    /// further updates bounce with BUSY. Must be >= 1.
    std::size_t update_queue_limit = 8;
    /// Modeled concurrent-reader lanes of the metrics-plane serving clock.
    /// Must be >= 1.
    unsigned reader_lanes = 1;
  };

  /// Throws InvalidArgument if update_queue_limit or reader_lanes is zero
  /// (previously coerced to 1 silently, hiding caller bugs — the CLI now
  /// rejects the misuse with a usage error before it gets here).
  Scheduler(graph::EdgeList graph, serve::ServeOptions engine_options,
            Options options);

  /// Vertex count (fixed for the daemon's lifetime: updates rewire edges,
  /// never grow the vertex set) — bounds command parsing.
  vidx_t num_vertices() const noexcept { return num_vertices_; }

  /// The connect-time greeting line.
  std::string hello(const serve::RenderOptions& render);

  /// Execute one parsed command and return its rendered response. Thread-
  /// safe; kMetrics/kShutdown render via the metrics plane / render_bye.
  std::string execute(const serve::Command& c,
                      const serve::RenderOptions& render);

  /// Parse-error accounting for the server's error responses.
  void note_error() noexcept { errors_.fetch_add(1, std::memory_order_relaxed); }

  /// One applied-or-noop update, in epoch order.
  struct UpdateRecord {
    serve::UpdateKind kind = serve::UpdateKind::kInsert;
    vidx_t u = 0, v = 0;
    bool applied = false;
    std::uint64_t epoch = 0;  ///< epoch AFTER this update
  };
  std::vector<UpdateRecord> update_log() const;

  /// Engine counters snapshot (takes the engine lock).
  serve::ServeEngine::Counters engine_counters();

  struct Metrics {
    std::uint64_t queries = 0;       ///< bc/top/approx/stats served
    std::uint64_t updates = 0;       ///< insert/delete responses (incl. noop)
    std::uint64_t busy = 0;          ///< updates bounced with BUSY
    std::uint64_t errors = 0;        ///< malformed frames answered with error
    std::uint64_t epoch = 0;
    std::size_t queue_depth = 0;     ///< updates admitted right now
    std::size_t queue_limit = 0;
    double cache_hit_ratio = 0.0;    ///< served_cached / (cached + recomputed)
    std::uint64_t p50_micros = 0;    ///< log2-bucket upper bounds
    std::uint64_t p99_micros = 0;
    double modeled_query_seconds = 0.0;     ///< serial sum of query cost
    double modeled_makespan_seconds = 0.0;  ///< reader-lane clock makespan
    unsigned reader_lanes = 1;
  };
  Metrics metrics();
  std::string render_metrics(const serve::RenderOptions& render);

  // ---- test seams ----

  /// Hold the reader side so subsequent updates queue (or bounce)
  /// deterministically. Release by destroying the returned lock.
  std::shared_lock<std::shared_mutex> hold_readers_for_test() {
    return std::shared_lock<std::shared_mutex>(epoch_mu_);
  }
  std::size_t pending_updates() const noexcept {
    return pending_updates_.load(std::memory_order_acquire);
  }

 private:
  std::string execute_query(const serve::Command& c,
                            const serve::RenderOptions& render);
  std::string execute_update(const serve::Command& c,
                             const serve::RenderOptions& render);
  void note_query_cost(double modeled_seconds, std::uint64_t wall_micros);
  void note_update_barrier();

  Options options_;
  vidx_t num_vertices_ = 0;

  std::shared_mutex epoch_mu_;
  std::mutex engine_mu_;
  serve::ServeEngine engine_;  // guarded by engine_mu_ (+ epoch_mu_ rules)

  std::atomic<std::size_t> pending_updates_{0};
  std::atomic<std::uint64_t> busy_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> updates_{0};

  mutable std::mutex log_mu_;
  std::vector<UpdateRecord> update_log_;  // guarded by log_mu_

  std::mutex clock_mu_;  // metrics-plane clock + latency histogram
  /// Reader-lane serving clock: queries charge the least-busy lane,
  /// updates barrier — the same ledger the hybrid co-execution engine
  /// reports its makespan with (src/hybrid/ledger.hpp).
  hybrid::MakespanLedger lane_clock_;
  double modeled_query_seconds_ = 0.0;
  std::uint64_t latency_buckets_[64] = {};
};

}  // namespace turbobc::daemon
