#include "daemon/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace turbobc::daemon {
namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error("daemon: " + what + ": " + std::strerror(errno));
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof sa.sun_path) {
    throw Error("daemon: unix socket path too long (" +
                std::to_string(path.size()) + " > " +
                std::to_string(sizeof sa.sun_path - 1) + "): " + path);
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

/// Resolve a TCP host:port into the first usable IPv4/IPv6 address and run
/// `use` on a fresh socket for it.
int with_resolved(const SocketAddr& addr, bool passive,
                  int (*use)(int, const sockaddr*, socklen_t)) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(addr.host.empty() ? nullptr : addr.host.c_str(),
                               std::to_string(addr.port).c_str(), &hints,
                               &res);
  if (rc != 0) {
    throw Error("daemon: cannot resolve '" + addr.host +
                "': " + gai_strerror(rc));
  }
  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (passive) {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    }
    if (use(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(res);
  errno = last_errno;
  sys_fail((passive ? "cannot bind " : "cannot connect to ") + addr.display());
}

}  // namespace

std::string SocketAddr::display() const {
  if (unix_domain) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

SocketAddr parse_socket_addr(const std::string& spec) {
  SocketAddr addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.unix_domain = true;
    addr.path = spec.substr(5);
    if (addr.path.empty()) {
      throw UsageError("daemon: empty unix socket path in '" + spec + "'");
    }
    return addr;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw UsageError("daemon: address '" + spec +
                     "' is not HOST:PORT or unix:PATH");
  }
  addr.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  std::size_t pos = 0;
  long value = -1;
  try {
    value = std::stol(port, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != port.size() || value < 0 || value > 65535) {
    throw UsageError("daemon: bad port '" + port + "' in '" + spec + "'");
  }
  addr.port = static_cast<int>(value);
  return addr;
}

int listen_socket(const SocketAddr& addr) {
  int fd = -1;
  if (addr.unix_domain) {
    const sockaddr_un sa = unix_sockaddr(addr.path);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("cannot create unix socket");
    ::unlink(addr.path.c_str());  // stale socket file from a dead daemon
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("cannot bind " + addr.display());
    }
  } else {
    fd = with_resolved(addr, /*passive=*/true, ::bind);
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("cannot listen on " + addr.display());
  }
  return fd;
}

SocketAddr local_addr(int fd, const SocketAddr& requested) {
  if (requested.unix_domain) return requested;
  sockaddr_storage ss{};
  socklen_t len = sizeof ss;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    sys_fail("getsockname");
  }
  SocketAddr bound = requested;
  if (ss.ss_family == AF_INET) {
    bound.port = ntohs(reinterpret_cast<const sockaddr_in&>(ss).sin_port);
  } else if (ss.ss_family == AF_INET6) {
    bound.port = ntohs(reinterpret_cast<const sockaddr_in6&>(ss).sin6_port);
  }
  return bound;
}

int accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // listener closed/shut down: the stop path
  }
}

int connect_socket(const SocketAddr& addr) {
  if (addr.unix_domain) {
    const sockaddr_un sa = unix_sockaddr(addr.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("cannot create unix socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) !=
        0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("cannot connect to " + addr.display());
    }
    return fd;
  }
  return with_resolved(addr, /*passive=*/false, ::connect);
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer vanished: abrupt disconnect, not an error
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void close_socket(int fd) { ::close(fd); }

void shutdown_read(int fd) { ::shutdown(fd, SHUT_RD); }

void shutdown_write(int fd) { ::shutdown(fd, SHUT_WR); }

void shutdown_both(int fd) { ::shutdown(fd, SHUT_RDWR); }

LineReader::Status LineReader::next(std::string& line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      // A terminated frame is still bounded: without this check a newline
      // arriving in the same chunk as an oversized line would sneak the
      // whole line past the guard.
      if (nl > max_line_) return Status::kOverflow;
      line.assign(buf_, 0, nl);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buf_.erase(0, nl + 1);
      return Status::kLine;
    }
    if (buf_.size() > max_line_) return Status::kOverflow;
    if (eof_) {
      // A trailing unterminated frame still parses (script files without a
      // final newline); emptiness means an orderly end of stream.
      if (buf_.empty()) return Status::kEof;
      line = std::move(buf_);
      buf_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return Status::kLine;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;  // reset-by-peer etc.: treat as abrupt end of stream
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace turbobc::daemon
