#include "daemon/client.hpp"

#include <sys/socket.h>

#include <istream>
#include <ostream>
#include <string>
#include <thread>

#include "daemon/socket.hpp"

namespace turbobc::daemon {

int run_client(const ClientOptions& options, std::istream& script,
               std::ostream& out) {
  const SocketAddr addr = parse_socket_addr(options.connect);
  const int fd = connect_socket(addr);

  // Drain responses concurrently so a slow consumer can never deadlock
  // against a daemon blocked on its own send buffer.
  std::thread reader([fd, &out] {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return;
      out.write(chunk, static_cast<std::streamsize>(n));
    }
  });

  std::string line;
  while (std::getline(script, line)) {
    line += '\n';
    if (!send_all(fd, line)) break;  // daemon went away mid-script
  }
  shutdown_write(fd);  // end-of-script: daemon drains, responds, closes

  reader.join();
  out.flush();
  close_socket(fd);
  return 0;
}

}  // namespace turbobc::daemon
