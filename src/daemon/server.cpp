#include "daemon/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace turbobc::daemon {

DaemonServer::DaemonServer(graph::EdgeList graph, const DaemonOptions& options)
    : options_(options),
      render_{options.json, /*wire=*/true},
      scheduler_(std::move(graph), options.engine, options.sched) {}

DaemonServer::~DaemonServer() { stop(); }

void DaemonServer::start() {
  const SocketAddr addr = parse_socket_addr(options_.listen);
  listen_fd_ = listen_socket(addr);
  bound_ = local_addr(listen_fd_, addr);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void DaemonServer::accept_loop() {
  for (;;) {
    const int fd = accept_connection(listen_fd_);
    if (fd < 0) return;  // listener closed: stop path
    if (stopping_.load(std::memory_order_acquire)) {
      close_socket(fd);
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void DaemonServer::serve_connection(int fd) {
  send_all(fd, scheduler_.hello(render_));
  LineReader reader(fd, options_.max_line);
  std::string line;
  for (;;) {
    const LineReader::Status status = reader.next(line);
    if (status == LineReader::Status::kEof) break;
    if (status == LineReader::Status::kOverflow) {
      scheduler_.note_error();
      send_all(fd, serve::render_error(
                       "line exceeds " + std::to_string(options_.max_line) +
                           " bytes; closing connection",
                       render_));
      break;
    }
    std::optional<serve::Command> c;
    try {
      c = serve::parse_command(line, scheduler_.num_vertices(), options_.top,
                               serve::Grammar::kDaemon);
    } catch (const UsageError& e) {
      scheduler_.note_error();
      if (!send_all(fd, serve::render_error(e.what(), render_))) break;
      continue;
    }
    if (!c.has_value()) continue;  // blank / comment: no response frame
    if (c->kind == serve::Command::kShutdown) {
      send_all(fd, scheduler_.execute(*c, render_));  // renders bye
      request_stop();
      break;
    }
    if (!send_all(fd, scheduler_.execute(*c, render_))) break;
  }
  // Deregister BEFORE closing: stop() must never shutdown_read a recycled
  // fd number.
  {
    std::lock_guard<std::mutex> g(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  close_socket(fd);
}

void DaemonServer::request_stop() {
  std::lock_guard<std::mutex> g(stop_mu_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

void DaemonServer::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [this] { return stop_requested_ || stopped_; });
    if (stopped_) return;
  }
  stop();
}

void DaemonServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Someone else is stopping (or stopped); wait for them to finish.
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [this] { return stopped_; });
    return;
  }

  // Wake the accept loop (shutdown, not close — close does not unblock a
  // thread already inside accept()); no new connections.
  if (listen_fd_ >= 0) shutdown_both(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close_socket(listen_fd_);
    listen_fd_ = -1;
  }

  // Drain: half-close every connection's read side — its loop finishes the
  // request in flight (responses still go out) and exits on EOF.
  {
    std::lock_guard<std::mutex> g(conn_mu_);
    for (const int fd : conn_fds_) shutdown_read(fd);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> g(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }

  if (bound_.unix_domain) ::unlink(bound_.path.c_str());

  std::lock_guard<std::mutex> g(stop_mu_);
  stop_requested_ = true;
  stopped_ = true;
  stop_cv_.notify_all();
}

}  // namespace turbobc::daemon
