// Loopback client for the serve daemon (`turbobc_cli client --connect`):
// connect, stream request lines from a script (or stdin), and copy every
// response byte to the output stream until the server closes. Used by
// tests, the daemon-smoke CI stage, and bench_daemon's concurrent drivers.
//
// Flow control is deliberately dumb: all script lines are sent as they are
// read, responses are drained by a background reader thread, and after the
// last line the write side is half-closed — the daemon sees EOF, finishes
// the requests in flight, and closes, which ends the reader. Because the
// daemon answers a connection's requests strictly in order, the captured
// transcript for a single connection is deterministic (and byte-identical
// to `serve --wire --script` on the same graph and script).
#pragma once

#include <iosfwd>
#include <string>

namespace turbobc::daemon {

struct ClientOptions {
  std::string connect;  ///< HOST:PORT or unix:PATH
};

/// Run one client session; returns the process exit code (0 on success).
/// Throws Error if the connection cannot be established.
int run_client(const ClientOptions& options, std::istream& script,
               std::ostream& out);

}  // namespace turbobc::daemon
