#include "daemon/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "approx/driver.hpp"
#include "gpusim/device.hpp"

namespace turbobc::daemon {

using serve::Command;
using serve::RenderOptions;

namespace {

std::string fixed6(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", x);
  return buf;
}

std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Scheduler::Options validated(Scheduler::Options options) {
  TBC_CHECK(options.reader_lanes > 0,
            "scheduler needs at least one reader lane");
  TBC_CHECK(options.update_queue_limit > 0,
            "scheduler needs an update queue limit of at least one");
  return options;
}

}  // namespace

std::uint64_t bucket_quantile(const std::uint64_t (&buckets)[64], double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  // Ceiling rank: the q-quantile is the smallest sample with at least
  // ceil(q * total) samples at or below it. Truncating instead rounded the
  // rank DOWN whenever q * total was fractional — p50 of 3 samples asked
  // for the 1st instead of the 2nd, p99 of anything under 100 samples
  // degenerated toward the minimum.
  const double scaled = q * static_cast<double>(total);
  std::uint64_t rank = static_cast<std::uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  rank = std::max<std::uint64_t>(1, rank);
  std::uint64_t seen = 0;
  for (int i = 0; i < 63; ++i) {
    seen += buckets[i];
    if (seen >= rank) return i == 0 ? 1 : (1ull << i);
  }
  // Bucket 63 is where the fill loop clamps, so it has no power-of-two
  // upper bound: a quantile landing there is "off the histogram".
  return ~0ull;
}

Scheduler::Scheduler(graph::EdgeList graph,
                     serve::ServeOptions engine_options, Options options)
    : options_(validated(options)),
      engine_(std::move(graph), engine_options),
      lane_clock_(options_.reader_lanes) {
  num_vertices_ = engine_.num_vertices();
}

std::string Scheduler::hello(const RenderOptions& render) {
  std::shared_lock<std::shared_mutex> rd(epoch_mu_);
  std::lock_guard<std::mutex> eng(engine_mu_);
  return serve::render_hello(engine_, render);
}

std::string Scheduler::execute(const Command& c, const RenderOptions& render) {
  switch (c.kind) {
    case Command::kBc:
    case Command::kTop:
    case Command::kApprox:
    case Command::kStats:
      return execute_query(c, render);
    case Command::kInsert:
    case Command::kDelete:
      return execute_update(c, render);
    case Command::kMetrics:
      return render_metrics(render);
    case Command::kShutdown: {
      // The server handles shutdown before dispatching here; render a bye
      // for direct (test) callers.
      std::shared_lock<std::shared_mutex> rd(epoch_mu_);
      std::lock_guard<std::mutex> eng(engine_mu_);
      return serve::render_bye(engine_.counters().epoch, render);
    }
  }
  return serve::render_error("unreachable command kind", render);
}

std::string Scheduler::execute_query(const Command& c,
                                     const RenderOptions& render) {
  const std::uint64_t t0 = now_micros();
  std::shared_lock<std::shared_mutex> rd(epoch_mu_);
  std::string response;
  double modeled = 0.0;

  if (c.kind == Command::kApprox) {
    // Options (and the component map) resolve under the engine lock; the
    // estimator itself runs on a private device with only the shared epoch
    // lock held — the concurrent read path.
    approx::ApproxOptions opt;
    std::uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> eng(engine_mu_);
      opt = engine_.make_approx_options(c.epsilon, c.delta);
      epoch = engine_.counters().epoch;
    }
    sim::Device device;
    device.set_keep_launch_records(false);
    const approx::ApproxResult result =
        approx::run_adaptive(device, engine_.graph(), opt);
    {
      std::lock_guard<std::mutex> eng(engine_mu_);
      engine_.note_query(result.device_seconds);
    }
    modeled = result.device_seconds;
    response = serve::render_approx(c.epsilon, c.delta, result, epoch, render);
  } else {
    std::lock_guard<std::mutex> eng(engine_mu_);
    const std::uint64_t epoch = engine_.counters().epoch;
    switch (c.kind) {
      case Command::kBc: {
        serve::QueryStats stats;
        const std::vector<bc_t>& bc = engine_.query_bc(&stats);
        modeled = stats.device_seconds;
        response = serve::render_bc(engine_, bc,
                                    serve::rank_vertices(bc, c.k), stats,
                                    epoch, render);
        break;
      }
      case Command::kTop: {
        serve::QueryStats stats;
        response = serve::render_top(engine_.query_top(c.k, &stats), epoch,
                                     render);
        modeled = stats.device_seconds;
        break;
      }
      case Command::kStats:
        response = serve::render_stats(engine_.counters(), render);
        break;
      default:
        break;
    }
  }

  queries_.fetch_add(1, std::memory_order_relaxed);
  note_query_cost(modeled, now_micros() - t0);
  return response;
}

std::string Scheduler::execute_update(const Command& c,
                                      const RenderOptions& render) {
  const std::size_t limit = options_.update_queue_limit;
  // Ticketed admission: fetch_add claims a queue slot; over-limit claims
  // are returned immediately with BUSY — backpressure, never a drop.
  const std::size_t pending =
      pending_updates_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (pending > limit) {
    pending_updates_.fetch_sub(1, std::memory_order_acq_rel);
    busy_.fetch_add(1, std::memory_order_relaxed);
    return serve::render_busy(pending - 1, limit, render);
  }

  const serve::UpdateKind kind = c.kind == Command::kInsert
                                     ? serve::UpdateKind::kInsert
                                     : serve::UpdateKind::kDelete;
  std::string response;
  {
    std::unique_lock<std::shared_mutex> wr(epoch_mu_);
    const serve::UpdateStats stats = engine_.apply_update(kind, c.u, c.v);
    const std::uint64_t epoch = engine_.counters().epoch;
    {
      std::lock_guard<std::mutex> lg(log_mu_);
      update_log_.push_back({kind, c.u, c.v, stats.applied, epoch});
    }
    response = serve::render_update(
        c.kind == Command::kInsert ? "insert" : "delete", c.u, c.v, stats,
        epoch, render);
  }
  pending_updates_.fetch_sub(1, std::memory_order_acq_rel);
  updates_.fetch_add(1, std::memory_order_relaxed);
  note_update_barrier();
  return response;
}

void Scheduler::note_query_cost(double modeled_seconds,
                                std::uint64_t wall_micros) {
  std::lock_guard<std::mutex> g(clock_mu_);
  lane_clock_.charge(lane_clock_.least_busy(), modeled_seconds);
  modeled_query_seconds_ += modeled_seconds;
  int bucket = 0;
  while (bucket < 63 && (1ull << bucket) < std::max<std::uint64_t>(
                                               wall_micros, 1)) {
    ++bucket;
  }
  ++latency_buckets_[bucket];
}

void Scheduler::note_update_barrier() {
  std::lock_guard<std::mutex> g(clock_mu_);
  lane_clock_.barrier();
}

std::vector<Scheduler::UpdateRecord> Scheduler::update_log() const {
  std::lock_guard<std::mutex> lg(log_mu_);
  return update_log_;
}

serve::ServeEngine::Counters Scheduler::engine_counters() {
  std::shared_lock<std::shared_mutex> rd(epoch_mu_);
  std::lock_guard<std::mutex> eng(engine_mu_);
  return engine_.counters();
}

Scheduler::Metrics Scheduler::metrics() {
  Metrics m;
  m.queries = queries_.load(std::memory_order_relaxed);
  m.updates = updates_.load(std::memory_order_relaxed);
  m.busy = busy_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  m.queue_depth = pending_updates_.load(std::memory_order_acquire);
  m.queue_limit = options_.update_queue_limit;
  m.reader_lanes = options_.reader_lanes;
  const serve::ServeEngine::Counters c = engine_counters();
  m.epoch = c.epoch;
  const std::uint64_t touched = c.served_cached + c.recomputed;
  m.cache_hit_ratio =
      touched == 0 ? 0.0
                   : static_cast<double>(c.served_cached) /
                         static_cast<double>(touched);
  {
    std::lock_guard<std::mutex> g(clock_mu_);
    m.p50_micros = bucket_quantile(latency_buckets_, 0.50);
    m.p99_micros = bucket_quantile(latency_buckets_, 0.99);
    m.modeled_query_seconds = modeled_query_seconds_;
    m.modeled_makespan_seconds = lane_clock_.makespan();
  }
  return m;
}

std::string Scheduler::render_metrics(const RenderOptions& render) {
  const Metrics m = metrics();
  std::ostringstream out;
  if (render.json) {
    out << "{\"event\":\"metrics\",\"epoch\":" << m.epoch << ",\"queries\":"
        << m.queries << ",\"updates\":" << m.updates << ",\"busy\":" << m.busy
        << ",\"errors\":" << m.errors << ",\"queue_depth\":" << m.queue_depth
        << ",\"queue_limit\":" << m.queue_limit << ",\"cache_hit_ratio\":"
        << fixed6(m.cache_hit_ratio) << ",\"p50_micros\":" << m.p50_micros
        << ",\"p99_micros\":" << m.p99_micros << ",\"reader_lanes\":"
        << m.reader_lanes << ",\"modeled_query_seconds\":"
        << fixed6(m.modeled_query_seconds) << ",\"modeled_makespan_seconds\":"
        << fixed6(m.modeled_makespan_seconds) << "}\n";
    return out.str();
  }
  out << "metrics: epoch=" << m.epoch << " queries=" << m.queries
      << " updates=" << m.updates << " busy=" << m.busy << " errors="
      << m.errors << " queue=" << m.queue_depth << "/" << m.queue_limit
      << " cache_hit=" << fixed6(m.cache_hit_ratio) << " p50_us="
      << m.p50_micros << " p99_us=" << m.p99_micros << " lanes="
      << m.reader_lanes << " modeled_query_s="
      << fixed6(m.modeled_query_seconds) << " modeled_makespan_s="
      << fixed6(m.modeled_makespan_seconds) << '\n';
  return out.str();
}

}  // namespace turbobc::daemon
