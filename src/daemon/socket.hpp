// Thin POSIX socket layer for the serve daemon: address parsing shared by
// `daemon --listen` and `client --connect`, blocking listen/accept/connect
// helpers, and newline framing with an oversized-line guard.
//
// Addresses:
//   HOST:PORT     TCP (numeric or resolvable host; PORT 0 binds ephemeral
//                 and the bound port is readable back via local_addr)
//   unix:PATH     Unix-domain stream socket at PATH
//
// All helpers throw turbobc::Error on system failures (prose prefixed
// "daemon:"), never errno-silently. SIGPIPE is suppressed per-send
// (MSG_NOSIGNAL): a peer that vanished mid-response surfaces as a false
// return from send_all, which the per-connection loop treats as an abrupt
// disconnect — never a process kill.
#pragma once

#include <cstddef>
#include <string>

namespace turbobc::daemon {

struct SocketAddr {
  bool unix_domain = false;
  std::string host;  ///< TCP only
  int port = 0;      ///< TCP only; 0 = ephemeral
  std::string path;  ///< unix only

  /// Canonical spec string ("127.0.0.1:4040" / "unix:/tmp/bc.sock").
  std::string display() const;
};

/// Parse a listen/connect spec (see file comment). Throws UsageError on a
/// malformed spec.
SocketAddr parse_socket_addr(const std::string& spec);

/// Bind + listen. For unix addresses a stale socket file is unlinked first.
/// Returns the listening fd.
int listen_socket(const SocketAddr& addr);

/// The locally bound address of `fd` (resolves an ephemeral TCP port).
SocketAddr local_addr(int fd, const SocketAddr& requested);

/// Accept one connection; returns -1 when the listener was closed or shut
/// down (the server's stop path).
int accept_connection(int listen_fd);

/// Connect to `addr`; returns the connected fd.
int connect_socket(const SocketAddr& addr);

/// Write the whole buffer; false if the peer disappeared.
bool send_all(int fd, const std::string& data);

/// Close, ignoring errors (teardown paths).
void close_socket(int fd);

/// Half-close: stop reading (wakes a blocked reader on the peer loop) while
/// leaving writes — in-flight responses — intact.
void shutdown_read(int fd);
/// Half-close the write side (client end-of-script signal).
void shutdown_write(int fd);

/// Full shutdown — the only portable way to WAKE a thread blocked in
/// accept() on this fd (close() alone can leave it blocked forever).
void shutdown_both(int fd);

/// Incremental newline-delimited reader over a blocking socket.
class LineReader {
 public:
  LineReader(int fd, std::size_t max_line) : fd_(fd), max_line_(max_line) {}

  enum class Status {
    kLine,      ///< `line` holds one frame (newline stripped, '\r' too)
    kEof,       ///< orderly end of stream (no partial frame pending)
    kOverflow,  ///< a frame exceeded max_line; the stream is unframed now
  };
  Status next(std::string& line);

 private:
  int fd_;
  std::size_t max_line_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace turbobc::daemon
