#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "dist/dist_turbobc.hpp"
#include "dist/partition.hpp"
#include "generators/generators.hpp"
#include "gpusim/executor.hpp"
#include "graph/csc.hpp"

namespace turbobc::dist {
namespace {

using graph::EdgeList;

sim::TopologyProps quad() { return sim::TopologyProps::quad_titan_xp(); }

/// Bit-exact comparison: the dist engine's contract is reproducing the
/// single-device float folds exactly, not approximately.
void expect_bits_equal(const std::vector<bc_t>& got,
                       const std::vector<bc_t>& want,
                       const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " vertex " << i;
  }
}

void expect_bc_near(const std::vector<bc_t>& got,
                    const std::vector<bc_t>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max({std::abs(want[i]), 1.0});
    EXPECT_NEAR(got[i], want[i], 1e-9 * scale) << what << " vertex " << i;
  }
}

struct Case {
  const char* name;
  bc::Variant variant;
};

class DistVariants : public ::testing::TestWithParam<Case> {};

TEST_P(DistVariants, ReplicatedExactIsBitIdenticalToSingleEngine) {
  for (const bool directed : {true, false}) {
    const auto el = gen::erdos_renyi(
        {.n = 60, .arcs = 300, .directed = directed, .seed = 7});
    sim::Device dev;
    bc::TurboBC single(dev, el, {.variant = GetParam().variant});
    const auto want = single.run_exact();

    sim::Topology topo(quad());
    DistTurboBC dist(topo, el,
                     {.strategy = Strategy::kReplicate,
                      .variant = GetParam().variant});
    const auto got = dist.run_exact();
    EXPECT_EQ(got.strategy_used, Strategy::kReplicate);
    expect_bits_equal(got.bc, want.bc,
                      std::string("replicated directed=") +
                          (directed ? "1" : "0"));
    EXPECT_EQ(got.last_source.bfs_depth, want.last_source.bfs_depth);
    EXPECT_EQ(got.last_source.reached, want.last_source.reached);
  }
}

TEST_P(DistVariants, PartitionedExactIsBitIdenticalToSingleEngine) {
  for (const bool directed : {true, false}) {
    const auto el = gen::erdos_renyi(
        {.n = 61, .arcs = 320, .directed = directed, .seed = 11});
    sim::Device dev;
    bc::TurboBC single(dev, el, {.variant = GetParam().variant});
    const auto want = single.run_exact();

    sim::Topology topo(quad());
    DistTurboBC dist(topo, el,
                     {.strategy = Strategy::kPartition,
                      .variant = GetParam().variant});
    const auto got = dist.run_exact();
    EXPECT_EQ(got.strategy_used, Strategy::kPartition);
    expect_bits_equal(got.bc, want.bc,
                      std::string("partitioned directed=") +
                          (directed ? "1" : "0"));
    EXPECT_EQ(got.last_source.bfs_depth, want.last_source.bfs_depth);
    EXPECT_EQ(got.last_source.reached, want.last_source.reached);
  }
}

TEST_P(DistVariants, PartitionedSingleSourceMatchesBrandes) {
  const auto el = gen::preferential_attachment(
      {.n = 90, .m_attach = 3, .seed = 3});
  sim::Topology topo(quad());
  DistTurboBC dist(topo, el,
                   {.strategy = Strategy::kPartition,
                    .variant = GetParam().variant});
  const auto got = dist.run_single_source(5);
  expect_bc_near(got.bc, baseline::brandes_delta(el, 5), "partitioned delta");
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DistVariants,
    ::testing::Values(Case{"scCOOC", bc::Variant::kScCooc},
                      Case{"scCSC", bc::Variant::kScCsc},
                      Case{"veCSC", bc::Variant::kVeCsc}),
    [](const auto& info) { return info.param.name; });

TEST(ShardPlanTest, CoversVerticesExactlyOnce) {
  for (const vidx_t n : {vidx_t{1}, vidx_t{3}, vidx_t{7}, vidx_t{64}}) {
    for (const int k : {1, 2, 4, 5}) {
      const ShardPlan plan = ShardPlan::make(n, k);
      vidx_t covered = 0;
      for (int s = 0; s < k; ++s) {
        EXPECT_EQ(plan.col_begin(s), covered);
        covered += plan.cols(s);
      }
      EXPECT_EQ(covered, n);
      for (vidx_t v = 0; v < n; ++v) {
        const int owner = plan.owner(v);
        EXPECT_GE(v, plan.col_begin(owner));
        EXPECT_LT(v, plan.col_end(owner));
      }
    }
  }
}

TEST(ShardPlanTest, ShardsPartitionTheNonzeros) {
  const auto el = gen::erdos_renyi(
      {.n = 50, .arcs = 260, .directed = true, .seed = 2});
  EdgeList canon = el;
  canon.canonicalize();
  const auto csc = graph::CscGraph::from_edges(canon);
  const ShardPlan plan = ShardPlan::make(canon.num_vertices(), 4);
  const auto shards = make_host_shards(csc, plan);
  eidx_t total = 0;
  for (const HostShard& sh : shards) {
    EXPECT_EQ(sh.col_ptr.size(), static_cast<std::size_t>(sh.n_local()) + 1);
    EXPECT_EQ(sh.col_ptr.front(), 0);
    EXPECT_EQ(static_cast<eidx_t>(sh.col_ptr.back()), sh.m_local());
    total += sh.m_local();
  }
  EXPECT_EQ(total, canon.num_arcs());
}

TEST(DistTurboBC, MoreDevicesThanVerticesStillCorrect) {
  // n=3 path over 4 devices: the last shard is empty and must be harmless.
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.symmetrize();
  sim::Topology topo(quad());
  DistTurboBC dist(topo, el,
                   {.strategy = Strategy::kPartition,
                    .variant = bc::Variant::kScCsc});
  const auto got = dist.run_exact();
  expect_bc_near(got.bc, baseline::brandes_bc(el), "tiny partitioned");
}

TEST(DistTurboBC, AutoReplicatesWhenTheGraphFits) {
  const auto el = gen::erdos_renyi(
      {.n = 40, .arcs = 200, .directed = true, .seed = 5});
  sim::Topology topo(quad());
  DistTurboBC dist(topo, el, {});
  EXPECT_EQ(dist.strategy(), Strategy::kReplicate);
}

TEST(DistTurboBC, AutoPartitionsPastTheMemoryWall) {
  // Scale device memory down until the single-device 7n + m inventory
  // overflows; the shards (plus exchange buffer) must still fit, and the
  // answer must match the sequential baseline.
  const auto el = gen::erdos_renyi(
      {.n = 3000, .arcs = 12000, .directed = true, .seed = 13});
  sim::TopologyProps props = quad();
  props.device = sim::DeviceProps::titan_xp_scaled_memory(1e-5);

  // The same graph OOMs on one such device.
  {
    sim::Device dev(props.device);
    bc::TurboBC single(dev, el, {.variant = bc::Variant::kScCsc});
    EXPECT_THROW(single.run_single_source(0), DeviceOutOfMemory);
  }

  sim::Topology topo(props);
  DistTurboBC dist(topo, el, {.variant = bc::Variant::kScCsc});
  EXPECT_EQ(dist.strategy(), Strategy::kPartition);
  const auto got = dist.run_single_source(0);
  expect_bc_near(got.bc, baseline::brandes_delta(el, 0), "past-the-wall");
  for (const ShardInfo& sh : got.shards) {
    EXPECT_LT(sh.peak_bytes, props.device.global_mem_bytes)
        << "device " << sh.device;
  }
}

TEST(DistTurboBC, PerDevicePeakMatchesTheFootprintModel) {
  const auto el = gen::erdos_renyi(
      {.n = 64, .arcs = 320, .directed = true, .seed = 17});
  EdgeList canon = el;
  canon.canonicalize();
  sim::Topology topo(quad());
  DistTurboBC dist(topo, el,
                   {.strategy = Strategy::kPartition,
                    .variant = bc::Variant::kScCsc});
  const auto got = dist.run_single_source(1);
  for (const ShardInfo& sh : got.shards) {
    const std::uint64_t model = partitioned_device_bytes(
        sh.variant, canon.num_vertices(), sh.col_end - sh.col_begin,
        static_cast<std::uint64_t>(sh.arcs));
    // The model counts payload words; the simulator pads every allocation to
    // its 256-byte granule, so the measured peak may only exceed the model
    // by bounded per-buffer padding (<= 10 live buffers per device).
    EXPECT_GE(sh.peak_bytes, model) << "device " << sh.device;
    EXPECT_LE(sh.peak_bytes, model + 10 * 256) << "device " << sh.device;
  }
}

TEST(DistTurboBC, CommBytesAreConserved) {
  const auto el = gen::erdos_renyi(
      {.n = 80, .arcs = 400, .directed = true, .seed = 19});
  sim::Topology topo(quad());
  DistTurboBC dist(topo, el,
                   {.strategy = Strategy::kPartition,
                    .variant = bc::Variant::kScCsc});
  const auto got = dist.run_single_source(2);
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const ShardInfo& sh : got.shards) {
    sent += sh.comm_bytes_sent;
    received += sh.comm_bytes_received;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(sent, received);
  EXPECT_GT(got.comm_seconds, 0.0);
  EXPECT_GT(got.device_seconds, got.comm_seconds);
}

TEST(DistTurboBC, ModeledResultsAreBitIdenticalAcrossThreadWidths) {
  const auto el = gen::erdos_renyi(
      {.n = 70, .arcs = 350, .directed = false, .seed = 23});
  struct Run {
    std::vector<bc_t> bc;
    double device_seconds;
    double comm_seconds;
    std::uint64_t comm_bytes;
    std::size_t max_peak;
  };
  const auto run_at = [&](unsigned threads, Strategy strategy) {
    sim::ExecutorPool::instance().set_threads(threads);
    sim::Topology topo(quad());
    DistTurboBC dist(topo, el,
                     {.strategy = strategy,
                      .variant = bc::Variant::kScCsc});
    const auto r = dist.run_sources({0, 3, 5, 9, 11, 20, 33, 41});
    return Run{r.bc, r.device_seconds, r.comm_seconds, r.comm_bytes,
               r.max_peak_bytes};
  };
  for (const Strategy strategy :
       {Strategy::kReplicate, Strategy::kPartition}) {
    const Run serial = run_at(1, strategy);
    const Run wide = run_at(8, strategy);
    sim::ExecutorPool::instance().set_threads(1);
    expect_bits_equal(wide.bc, serial.bc, "width determinism");
    EXPECT_EQ(wide.device_seconds, serial.device_seconds);
    EXPECT_EQ(wide.comm_seconds, serial.comm_seconds);
    EXPECT_EQ(wide.comm_bytes, serial.comm_bytes);
    EXPECT_EQ(wide.max_peak, serial.max_peak);
  }
}

TEST(DistTurboBC, ReplicatedEdgeBcIsBitIdenticalToSingleEngine) {
  const auto el = gen::erdos_renyi(
      {.n = 40, .arcs = 200, .directed = true, .seed = 29});
  sim::Device dev;
  bc::TurboBC single(dev, el,
                     {.variant = bc::Variant::kScCsc, .edge_bc = true});
  const auto want = single.run_exact();

  sim::Topology topo(quad());
  DistTurboBC dist(topo, el,
                   {.strategy = Strategy::kReplicate,
                    .variant = bc::Variant::kScCsc,
                    .edge_bc = true});
  const auto got = dist.run_exact();
  expect_bits_equal(got.edge_bc, want.edge_bc, "edge bc");
}

TEST(DistTurboBC, ReplicatedMomentsAreBitIdenticalToSingleEngine) {
  const auto el = gen::erdos_renyi(
      {.n = 50, .arcs = 250, .directed = false, .seed = 31});
  const std::vector<vidx_t> sources{1, 4, 9, 16, 25};
  const std::vector<double> weights{2.0, 1.5, 1.0, 3.0, 0.5};

  sim::Device dev;
  bc::TurboBC single(dev, el, {.variant = bc::Variant::kScCsc});
  bc::TurboBC::MomentResult want_m;
  single.run_sources_moments(sources, weights, want_m);

  sim::Topology topo(quad());
  DistTurboBC dist(topo, el,
                   {.strategy = Strategy::kReplicate,
                    .variant = bc::Variant::kScCsc});
  bc::TurboBC::MomentResult got_m;
  dist.run_sources_moments(sources, weights, got_m);
  expect_bits_equal(got_m.sum, want_m.sum, "moment sum");
  expect_bits_equal(got_m.sumsq, want_m.sumsq, "moment sumsq");
}

TEST(DistTurboBC, UnsupportedCombinationsAreRejected) {
  const auto el = gen::erdos_renyi(
      {.n = 30, .arcs = 120, .directed = true, .seed = 37});
  sim::Topology topo(quad());
  EXPECT_THROW(DistTurboBC(topo, el,
                           {.strategy = Strategy::kPartition,
                            .edge_bc = true}),
               InvalidArgument);
  DistTurboBC part(topo, el, {.strategy = Strategy::kPartition});
  bc::TurboBC::MomentResult moments;
  EXPECT_THROW(part.run_sources_moments({0}, {1.0}, moments),
               InvalidArgument);
  EXPECT_THROW(part.run_single_source(-1), InvalidArgument);
}

TEST(DistTurboBC, StrategyNamesRoundTrip) {
  for (const Strategy s :
       {Strategy::kAuto, Strategy::kReplicate, Strategy::kPartition}) {
    EXPECT_EQ(parse_strategy(to_string(s)), s);
  }
  EXPECT_FALSE(parse_strategy("bogus").has_value());
}

}  // namespace
}  // namespace turbobc::dist
