#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bc_la_seq.hpp"
#include "baselines/brandes.hpp"
#include "baselines/gunrock_like.hpp"
#include "baselines/ligra_like.hpp"
#include "common/error.hpp"
#include "generators/generators.hpp"

namespace turbobc::baseline {
namespace {

using graph::EdgeList;

void expect_bc_equal(const std::vector<bc_t>& got,
                     const std::vector<bc_t>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(std::abs(want[i]), 1.0);
    EXPECT_NEAR(got[i], want[i], 1e-9 * scale) << what << " vertex " << i;
  }
}

// -------------------------------------------------------------- Brandes

TEST(Brandes, PathGraphClosedForm) {
  EdgeList el(5, true);
  for (vidx_t i = 0; i + 1 < 5; ++i) el.add_edge(i, i + 1);
  el.symmetrize();
  const auto bc = brandes_bc(el);
  EXPECT_NEAR(bc[1], 3.0, 1e-12);
  EXPECT_NEAR(bc[2], 4.0, 1e-12);
}

TEST(Brandes, CycleIsUniform) {
  // Every vertex of an even cycle has identical BC by symmetry.
  EdgeList el(8, true);
  for (vidx_t i = 0; i < 8; ++i) el.add_edge(i, (i + 1) % 8);
  el.symmetrize();
  const auto bc = brandes_bc(el);
  for (std::size_t v = 1; v < 8; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-12);
  EXPECT_GT(bc[0], 0.0);
}

TEST(Brandes, SigmaCountsShortestPaths) {
  // Diamond: 0->1, 0->2, 1->3, 2->3: two shortest paths to 3.
  EdgeList el(4, true);
  el.add_edge(0, 1);
  el.add_edge(0, 2);
  el.add_edge(1, 3);
  el.add_edge(2, 3);
  const auto sigma = brandes_sigma(el, 0);
  EXPECT_EQ(sigma[0], 1);
  EXPECT_EQ(sigma[1], 1);
  EXPECT_EQ(sigma[2], 1);
  EXPECT_EQ(sigma[3], 2);
}

TEST(Brandes, DiamondSplitsDependency) {
  EdgeList el(4, true);
  el.add_edge(0, 1);
  el.add_edge(0, 2);
  el.add_edge(1, 3);
  el.add_edge(2, 3);
  const auto d = brandes_delta(el, 0);
  EXPECT_NEAR(d[1], 0.5, 1e-12);  // half the paths to 3 run through 1
  EXPECT_NEAR(d[2], 0.5, 1e-12);
  EXPECT_NEAR(d[3], 0.0, 1e-12);
}

TEST(Brandes, RejectsBadSource) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  EXPECT_THROW(brandes_delta(el, 9), InvalidArgument);
}

// ------------------------------------------------- sequential BC-LA

TEST(SequentialBcLa, MatchesBrandesSingleSource) {
  for (const bool directed : {true, false}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto el = gen::erdos_renyi({.n = 90, .arcs = 450,
                                        .directed = directed, .seed = seed});
      const SequentialBcLa seq(el);
      const auto r = seq.run_single_source(2);
      expect_bc_equal(r.bc, brandes_delta(el, 2), "seq-la single");
    }
  }
}

TEST(SequentialBcLa, MatchesBrandesExact) {
  const auto el = gen::mycielski(6);
  const SequentialBcLa seq(el);
  expect_bc_equal(seq.run_exact().bc, brandes_bc(el), "seq-la exact");
}

TEST(SequentialBcLa, CountsGrowWithDepthTimesN) {
  // The linear-algebra sequential baseline scans all n columns per level;
  // a deep chain must cost far more than a shallow star of equal size.
  EdgeList chain(400, true);
  for (vidx_t i = 0; i + 1 < 400; ++i) chain.add_edge(i, i + 1);
  chain.symmetrize();
  EdgeList star(400, true);
  for (vidx_t i = 1; i < 400; ++i) star.add_edge(0, i);
  star.symmetrize();

  const auto rc = SequentialBcLa(chain).run_single_source(0);
  const auto rs = SequentialBcLa(star).run_single_source(0);
  EXPECT_GT(rc.ops.seq_bytes, 50 * rs.ops.seq_bytes);
  EXPECT_GT(rc.modeled_seconds, rs.modeled_seconds);
}

TEST(SequentialBcLa, ReportsBfsDepth) {
  EdgeList chain(50, true);
  for (vidx_t i = 0; i + 1 < 50; ++i) chain.add_edge(i, i + 1);
  const SequentialBcLa seq(chain);
  EXPECT_EQ(seq.run_single_source(0).bfs_depth, 49);
}

// ---------------------------------------------------------- gunrock-like

TEST(GunrockLike, MatchesBrandesDirected) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto el = gen::erdos_renyi({.n = 90, .arcs = 500, .directed = true,
                                      .seed = seed});
    sim::Device dev;
    GunrockLikeBc g(dev, el);
    const auto r = g.run_single_source(4);
    expect_bc_equal(r.bc, brandes_delta(el, 4), "gunrock directed");
  }
}

TEST(GunrockLike, MatchesBrandesUndirected) {
  const auto el = gen::mycielski(8);
  sim::Device dev;
  GunrockLikeBc g(dev, el);
  const auto r = g.run_single_source(7);
  expect_bc_equal(r.bc, brandes_delta(el, 7), "gunrock undirected");
}

TEST(GunrockLike, ExercisesBothPushAndPull) {
  // A graph whose frontier starts tiny (push) and becomes huge (pull).
  const auto el = gen::small_world({.n = 4000, .k = 8, .rewire_p = 0.1,
                                    .seed = 5});
  sim::Device dev;
  GunrockLikeBc g(dev, el);
  const auto r = g.run_single_source(0);
  expect_bc_equal(r.bc, brandes_delta(el, 0), "push-pull");
  const auto& agg = dev.kernel_aggregates();
  EXPECT_GT(agg.count("gunrock_advance_push"), 0u);
  EXPECT_GT(agg.count("gunrock_advance_pull"), 0u);
}

TEST(GunrockLike, InventoryExceedsTurboFootprint) {
  const auto el = gen::erdos_renyi({.n = 2000, .arcs = 16000,
                                    .directed = false, .seed = 6});
  sim::Device dev;
  GunrockLikeBc g(dev, el);
  // 2 formats + 9-ish n arrays: strictly more bytes than CSC + m + 7n words.
  const auto n = static_cast<std::uint64_t>(el.num_vertices());
  const auto m = static_cast<std::uint64_t>(el.num_arcs());
  EXPECT_GT(g.inventory_bytes(), 4 * (2 * m + 2 * n));
}

TEST(GunrockLike, OomsOnTightDevice) {
  const auto el = gen::erdos_renyi({.n = 5000, .arcs = 60000,
                                    .directed = true, .seed = 7});
  // Capacity that fits the TurboBC inventory but not gunrock's.
  sim::Device dev(sim::DeviceProps::titan_xp_scaled_memory(7e-5));  // ~0.9 MB
  EXPECT_THROW(GunrockLikeBc(dev, el), DeviceOutOfMemory);
}

TEST(GunrockLike, DisconnectedGraphTerminates) {
  EdgeList el(10, true);
  el.add_edge(0, 1);
  el.add_edge(5, 6);
  el.symmetrize();
  sim::Device dev;
  GunrockLikeBc g(dev, el);
  const auto r = g.run_single_source(0);
  expect_bc_equal(r.bc, brandes_delta(el, 0), "gunrock disconnected");
}

// ------------------------------------------------------------ ligra-like

TEST(LigraLike, MatchesBrandesDirected) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto el = gen::erdos_renyi({.n = 90, .arcs = 500, .directed = true,
                                      .seed = seed});
    const LigraLikeBc ligra(el);
    const auto r = ligra.run_single_source(4);
    expect_bc_equal(r.bc, brandes_delta(el, 4), "ligra directed");
  }
}

TEST(LigraLike, MatchesBrandesUndirectedExact) {
  const auto el = gen::mycielski(6);
  const LigraLikeBc ligra(el);
  expect_bc_equal(ligra.run_exact().bc, brandes_bc(el), "ligra exact");
}

TEST(LigraLike, SwitchesToDenseOnExplosiveFrontiers) {
  const auto el = gen::mycielski(9);  // frontier covers the graph at depth 2
  const LigraLikeBc ligra(el);
  const auto r = ligra.run_single_source(0);
  expect_bc_equal(r.bc, brandes_delta(el, 0), "ligra dense");
  // Rounds: 2 per forward level + 2 per backward level + 1 accumulation;
  // mycielski depth is 3 (4 forward sweeps counting the empty last one).
  EXPECT_LE(r.ops.rounds, 2u * (4u + 3u) + 1u);
}

TEST(LigraLike, ParallelModelBeatsSequentialModel) {
  const auto el = gen::kronecker({.scale = 10, .edge_factor = 16, .seed = 8});
  const LigraLikeBc ligra(el);
  const SequentialBcLa seq(el);
  const vidx_t s = 0;
  EXPECT_LT(ligra.run_single_source(s).modeled_seconds,
            seq.run_single_source(s).modeled_seconds);
}

TEST(LigraLike, PerSourceWorkIsNearLinear) {
  // Unlike the sequential LA baseline, ligra's per-source work must not
  // scale with depth x n. Compare chain vs star total counted bytes.
  EdgeList chain(400, true);
  for (vidx_t i = 0; i + 1 < 400; ++i) chain.add_edge(i, i + 1);
  chain.symmetrize();
  const LigraLikeBc ligra(chain);
  const auto r = ligra.run_single_source(0);
  const auto total = r.ops.seq_bytes + r.ops.rand_bytes;
  // A 400-vertex chain visits ~800 arcs: a loose 100x-linear budget.
  EXPECT_LT(total, 100u * 800u * 8u);
}

}  // namespace
}  // namespace turbobc::baseline
