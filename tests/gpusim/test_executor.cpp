// ExecutorPool behaviour and the host-parallel launch engine's determinism
// guarantees: chunk/task coverage, nested-job safety, exception propagation,
// and the contention stress test — many warps hammering one address through
// atomic_add must produce bit-identical results and LaunchRecords at any
// pool width.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gpusim/buffer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/kernel.hpp"

namespace turbobc::sim {
namespace {

/// Every test leaves the process-wide pool at width 1 so unrelated suites
/// keep exercising the serial paths they were written against.
struct PoolGuard {
  explicit PoolGuard(unsigned width) {
    ExecutorPool::instance().set_threads(width);
  }
  ~PoolGuard() { ExecutorPool::instance().set_threads(1); }
};

TEST(ExecutorPool, SetThreadsWidths) {
  PoolGuard guard(1);
  EXPECT_EQ(ExecutorPool::instance().set_threads(4), 4u);
  EXPECT_EQ(ExecutorPool::instance().threads(), 4u);
  EXPECT_EQ(ExecutorPool::instance().set_threads(1), 1u);
  EXPECT_GE(ExecutorPool::instance().set_threads(0), 1u);  // hw concurrency
  // Absurd widths (e.g. a negative CLI value wrapped through unsigned)
  // clamp instead of spawning millions of threads.
  EXPECT_EQ(ExecutorPool::instance().set_threads(0xffffffffu), kMaxPoolWidth);
}

TEST(ExecutorPool, ForChunksCoversEveryIndexOnce) {
  PoolGuard guard(4);
  const std::uint64_t total = 1003;
  std::vector<std::atomic<int>> hits(total);
  ExecutorPool::instance().for_chunks(
      total, [&](std::uint64_t begin, std::uint64_t end, unsigned) {
        for (std::uint64_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (std::uint64_t i = 0; i < total; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorPool, ForChunksBoundariesDependOnlyOnTotal) {
  // The same (total, width) must give the same partition every time — warp
  // chunk boundaries feed the fixed-order merge.
  PoolGuard guard(3);
  const std::uint64_t total = 100;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> a(3), b(3);
  ExecutorPool::instance().for_chunks(
      total,
      [&](std::uint64_t wb, std::uint64_t we, unsigned s) { a[s] = {wb, we}; });
  ExecutorPool::instance().for_chunks(
      total,
      [&](std::uint64_t wb, std::uint64_t we, unsigned s) { b[s] = {wb, we}; });
  EXPECT_EQ(a, b);
  // Contiguous ascending coverage.
  EXPECT_EQ(a[0].first, 0u);
  EXPECT_EQ(a[0].second, a[1].first);
  EXPECT_EQ(a[1].second, a[2].first);
  EXPECT_EQ(a[2].second, total);
}

TEST(ExecutorPool, ForTasksRunsEveryTaskOnce) {
  PoolGuard guard(4);
  std::vector<std::atomic<int>> hits(37);
  ExecutorPool::instance().for_tasks(hits.size(), [&](std::size_t t, unsigned) {
    hits[t].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t t = 0; t < hits.size(); ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(ExecutorPool, PropagatesWorkerExceptions) {
  PoolGuard guard(4);
  EXPECT_THROW(ExecutorPool::instance().for_tasks(
                   16,
                   [&](std::size_t t, unsigned) {
                     if (t == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> ran{0};
  ExecutorPool::instance().for_tasks(
      4, [&](std::size_t, unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ExecutorPool, NestedUseRunsInlineWithoutDeadlock) {
  PoolGuard guard(4);
  std::atomic<int> inner{0};
  ExecutorPool::instance().for_tasks(8, [&](std::size_t, unsigned) {
    EXPECT_TRUE(ExecutorPool::in_pool_job());
    ExecutorPool::instance().for_chunks(
        10, [&](std::uint64_t b, std::uint64_t e, unsigned) {
          inner.fetch_add(static_cast<int>(e - b));
        });
  });
  EXPECT_EQ(inner.load(), 80);
  EXPECT_FALSE(ExecutorPool::in_pool_job());
}

// ---------------------------------------------------------------------------
// Contention stress: one address hammered by every lane of many warps.
// ---------------------------------------------------------------------------

struct LaunchSnapshot {
  LaunchRecord rec;
  double value = 0.0;
};

/// 8192 threads (256 warps — well past the parallel threshold) all
/// atomic_add into element 0.
template <typename T>
LaunchSnapshot hammer_scalar(unsigned threads) {
  ExecutorPool::instance().set_threads(threads);
  Device dev;
  DeviceBuffer<T> buf(dev, 4, "target");
  buf.device_fill(T{0});
  constexpr std::uint64_t kThreads = 8192;
  launch_scalar(dev, "hammer", kThreads, [&](ThreadCtx& t) {
    // Non-associative for floating T: value depends on the thread id, so a
    // wrong accumulation order shows up in the low bits of the sum.
    const auto id = static_cast<T>(t.global_id() % 97 + 1);
    buf.atomic_add(t, 0, id);
  });
  LaunchSnapshot snap;
  snap.rec = dev.launches().back();
  snap.value = static_cast<double>(buf.host()[0]);
  return snap;
}

void expect_same_record(const LaunchRecord& a, const LaunchRecord& b) {
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.warps, b.warps);
  EXPECT_EQ(a.issue_slots, b.issue_slots);
  EXPECT_EQ(a.max_warp_slots, b.max_warp_slots);
  EXPECT_EQ(a.load_requests, b.load_requests);
  EXPECT_EQ(a.store_requests, b.store_requests);
  EXPECT_EQ(a.atomic_requests, b.atomic_requests);
  EXPECT_EQ(a.atomic_float_requests, b.atomic_float_requests);
  EXPECT_EQ(a.load_transactions, b.load_transactions);
  EXPECT_EQ(a.store_transactions, b.store_transactions);
  EXPECT_EQ(a.l2_hit_transactions, b.l2_hit_transactions);
  EXPECT_EQ(a.dram_transactions, b.dram_transactions);
  EXPECT_EQ(a.time_s, b.time_s);  // bit-identical, not approximately
}

TEST(ContentionStress, IntegerAtomicsBitIdenticalAcrossWidths) {
  PoolGuard guard(1);
  const LaunchSnapshot serial = hammer_scalar<std::int32_t>(1);
  const LaunchSnapshot parallel = hammer_scalar<std::int32_t>(8);
  EXPECT_EQ(serial.value, parallel.value);
  expect_same_record(serial.rec, parallel.rec);
  EXPECT_EQ(serial.rec.atomic_requests, 8192u);
}

TEST(ContentionStress, FloatAtomicsBitIdenticalAcrossWidths) {
  PoolGuard guard(1);
  const LaunchSnapshot serial = hammer_scalar<double>(1);
  const LaunchSnapshot parallel = hammer_scalar<double>(8);
  // Deferred warp-order replay must reproduce the serial fold exactly —
  // EXPECT_EQ on the doubles, no tolerance.
  EXPECT_EQ(serial.value, parallel.value);
  expect_same_record(serial.rec, parallel.rec);
  EXPECT_EQ(serial.rec.atomic_float_requests, 8192u);
}

TEST(ContentionStress, WarpAtomicsBitIdenticalAcrossWidths) {
  PoolGuard guard(1);
  const auto run = [](unsigned threads) {
    ExecutorPool::instance().set_threads(threads);
    Device dev;
    DeviceBuffer<double> buf(dev, 8, "target");
    buf.device_fill(0.0);
    launch_warp(dev, "warp_hammer", 256, [&](WarpCtx& w) {
      w.atomic_add(buf, kFullMask, [&](int) { return std::size_t{0}; },
                   [&](int lane) {
                     return 1.0 / static_cast<double>(
                                      w.warp_id() * 32 + lane + 1);
                   });
    });
    LaunchSnapshot snap;
    snap.rec = dev.launches().back();
    snap.value = buf.host()[0];
    return snap;
  };
  const LaunchSnapshot serial = run(1);
  const LaunchSnapshot parallel = run(8);
  EXPECT_EQ(serial.value, parallel.value);
  expect_same_record(serial.rec, parallel.rec);
}

TEST(ParallelLaunch, ScatterAndLoadMatchSerial) {
  PoolGuard guard(1);
  const auto run = [](unsigned threads) {
    ExecutorPool::instance().set_threads(threads);
    Device dev;
    DeviceBuffer<std::int32_t> src(dev, 8192, "src");
    DeviceBuffer<std::int32_t> dst(dev, 8192, "dst");
    for (std::size_t i = 0; i < 8192; ++i) {
      src.host()[i] = static_cast<std::int32_t>(i * 7 % 8192);
    }
    launch_scalar(dev, "permute", 8192, [&](ThreadCtx& t) {
      const auto i = static_cast<std::size_t>(t.global_id());
      const auto v = src.load(t, i);
      dst.store(t, static_cast<std::size_t>(v), static_cast<std::int32_t>(i));
      t.count_ops(1);
    });
    return std::make_pair(dst.host(), dev.launches().back());
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.first, parallel.first);
  expect_same_record(serial.second, parallel.second);
}

TEST(ParallelLaunch, SerialOnlyPolicyKeepsThreadOrder) {
  PoolGuard guard(8);
  Device dev;
  DeviceBuffer<std::int32_t> queue(dev, 8192, "queue");
  DeviceBuffer<std::int32_t> counter(dev, 1, "counter");
  counter.device_fill(0);
  launch_scalar(
      dev, "slots", 8192,
      [&](ThreadCtx& t) {
        const std::int32_t slot = counter.atomic_add(t, 0, 1);
        queue.store(t, static_cast<std::size_t>(slot),
                    static_cast<std::int32_t>(t.global_id()));
      },
      LaunchPolicy::kSerialOnly);
  // Serial-only execution allocates slots in thread order.
  for (std::size_t i = 0; i < 8192; ++i) {
    ASSERT_EQ(queue.host()[i], static_cast<std::int32_t>(i));
  }
}

}  // namespace
}  // namespace turbobc::sim
