// Property-style sweeps over the cost model: monotonicity and ordering
// relations that must hold for ANY access pattern, parameterized across
// strides and warp occupancies.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/costmodel.hpp"

namespace turbobc::sim {
namespace {

std::vector<Access> strided_warp(std::uint64_t base, int lanes, int stride,
                                 int size, MemOp op) {
  std::vector<Access> acc;
  for (int lane = 0; lane < lanes; ++lane) {
    acc.push_back({base + static_cast<std::uint64_t>(lane) *
                              static_cast<std::uint64_t>(stride),
                   static_cast<std::uint8_t>(size), op});
  }
  return acc;
}

/// Transactions for one slot with the given stride.
std::uint64_t tx_for_stride(int stride) {
  CostModel cm{DeviceProps::titan_xp()};
  LaunchRecord rec;
  const auto acc = strided_warp(0x1000, 32, stride, 4, MemOp::kLoad);
  cm.process_slot(rec, acc.data(), 32);
  return rec.load_transactions + rec.store_transactions;
}

class StrideSweep : public ::testing::TestWithParam<int> {};

TEST_P(StrideSweep, TransactionsNeverDecreaseWithStride) {
  const int stride = GetParam();
  EXPECT_GE(tx_for_stride(stride * 2), tx_for_stride(stride));
}

TEST_P(StrideSweep, TransactionsBoundedByLanesAndSectors) {
  const auto tx = tx_for_stride(GetParam());
  EXPECT_GE(tx, 4u);   // 128 B of 4 B loads needs at least 4 sectors
  EXPECT_LE(tx, 64u);  // at most 2 sectors per lane
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256));

class OccupancySweep : public ::testing::TestWithParam<int> {};

TEST_P(OccupancySweep, FewerActiveLanesNeverCostMoreTransactions) {
  const int lanes = GetParam();
  CostModel cm{DeviceProps::titan_xp()};
  LaunchRecord partial, full;
  const auto accp = strided_warp(0x1000, lanes, 64, 4, MemOp::kLoad);
  cm.process_slot(partial, accp.data(), lanes);
  cm.reset_l2();
  const auto accf = strided_warp(0x1000, 32, 64, 4, MemOp::kLoad);
  cm.process_slot(full, accf.data(), 32);
  EXPECT_LE(partial.load_transactions, full.load_transactions);
}

INSTANTIATE_TEST_SUITE_P(Lanes, OccupancySweep,
                         ::testing::Values(1, 2, 7, 16, 31));

TEST(CostModelProperties, TimeMonotoneInDramTraffic) {
  // More DRAM transactions can never make a launch faster (equal compute).
  CostModel cm{DeviceProps::titan_xp()};
  LaunchRecord small, big;
  small.dram_transactions = 1000;
  big.dram_transactions = 100000;
  EXPECT_LT(cm.finalize(small), cm.finalize(big));
}

TEST(CostModelProperties, L2HitsAreCheaperThanDramMisses) {
  CostModel cm{DeviceProps::titan_xp()};
  LaunchRecord hits, misses;
  hits.l2_hit_transactions = 100000;
  misses.dram_transactions = 100000;
  EXPECT_LT(cm.finalize(hits), cm.finalize(misses));
}

TEST(CostModelProperties, FloatAtomicsNeverCheaperThanInt) {
  CostModel cm{DeviceProps::titan_xp()};
  LaunchRecord i, f;
  i.atomic_requests = 1000000;
  f.atomic_requests = 1000000;
  f.atomic_float_requests = 1000000;
  EXPECT_LE(cm.finalize(i), cm.finalize(f));
}

TEST(CostModelProperties, LaunchOverheadIsTheFloor) {
  CostModel cm{DeviceProps::titan_xp()};
  LaunchRecord empty;
  EXPECT_DOUBLE_EQ(cm.finalize(empty),
                   DeviceProps::titan_xp().kernel_launch_overhead_s);
}

TEST(CostModelProperties, GltIsTransactionBytesOverTime) {
  LaunchRecord rec;
  rec.load_transactions = 1000;
  rec.time_s = 1e-6;
  EXPECT_DOUBLE_EQ(rec.glt_bps(32), 1000.0 * 32 / 1e-6);
  EXPECT_DOUBLE_EQ(rec.transaction_bytes(32), 32000u);
}

TEST(CostModelProperties, SlotCostScalesWithReplays) {
  // A fully scattered warp load must cost >= a fully coalesced one in issue
  // slots, for every size.
  for (const int size : {1, 2, 4, 8}) {
    CostModel cm{DeviceProps::titan_xp()};
    LaunchRecord coalesced, scattered;
    const auto c = strided_warp(0x1000, 32, size, size, MemOp::kLoad);
    const auto slots_c = cm.process_slot(coalesced, c.data(), 32);
    cm.reset_l2();
    const auto s = strided_warp(0x100000, 32, 4096, size, MemOp::kLoad);
    const auto slots_s = cm.process_slot(scattered, s.data(), 32);
    EXPECT_GE(slots_s, slots_c) << "size " << size;
  }
}

}  // namespace
}  // namespace turbobc::sim
