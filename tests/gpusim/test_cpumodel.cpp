#include <gtest/gtest.h>

#include "gpusim/cpumodel.hpp"

namespace turbobc::sim {
namespace {

TEST(CpuModel, SequentialTimeIsAdditive) {
  CpuModel m;
  CpuOpCounts alu{.alu_ops = 1000000};
  CpuOpCounts mem{.seq_bytes = 1000000};
  CpuOpCounts both{.alu_ops = 1000000, .seq_bytes = 1000000};
  EXPECT_DOUBLE_EQ(m.seconds_sequential(both),
                   m.seconds_sequential(alu) + m.seconds_sequential(mem));
}

TEST(CpuModel, RandomBytesAreSlowerThanStreaming) {
  CpuModel m;
  CpuOpCounts seq{.seq_bytes = 1 << 20};
  CpuOpCounts rnd{.rand_bytes = 1 << 20};
  EXPECT_GT(m.seconds_sequential(rnd), m.seconds_sequential(seq));
}

TEST(CpuModel, ParallelBeatsSequentialOnBigWork) {
  CpuModel m;
  CpuOpCounts big{.alu_ops = 100000000, .seq_bytes = 400000000,
                  .rand_bytes = 100000000, .rounds = 20};
  EXPECT_LT(m.seconds_parallel(big), m.seconds_sequential(big));
}

TEST(CpuModel, RoundsChargeSynchronization) {
  CpuModel m;
  CpuOpCounts none{};
  CpuOpCounts rounds{.rounds = 100};
  EXPECT_DOUBLE_EQ(m.seconds_parallel(rounds) - m.seconds_parallel(none),
                   100 * m.props().round_sync_s);
}

TEST(CpuModel, OpCountsAccumulate) {
  CpuOpCounts a{.alu_ops = 1, .seq_bytes = 2, .rand_bytes = 3, .rounds = 4};
  CpuOpCounts b{.alu_ops = 10, .seq_bytes = 20, .rand_bytes = 30,
                .rounds = 40};
  a += b;
  EXPECT_EQ(a.alu_ops, 11u);
  EXPECT_EQ(a.seq_bytes, 22u);
  EXPECT_EQ(a.rand_bytes, 33u);
  EXPECT_EQ(a.rounds, 44u);
}

TEST(CpuModel, SyncOverheadDominatesTinyParallelRounds) {
  // A deep BFS with tiny frontiers must not look free on the parallel
  // machine: the per-round barrier keeps a floor under it. (This is why
  // ligra does not crush the GPU on road networks.)
  CpuModel m;
  CpuOpCounts deep{.alu_ops = 1000, .rand_bytes = 8000, .rounds = 1000};
  EXPECT_GT(m.seconds_parallel(deep), 1000 * m.props().round_sync_s * 0.99);
}

}  // namespace
}  // namespace turbobc::sim
