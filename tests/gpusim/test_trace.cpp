#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/buffer.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/trace.hpp"

namespace turbobc::sim {
namespace {

Device device_with_work() {
  Device dev;
  DeviceBuffer<int> buf(dev, 256, "x");
  buf.device_fill(1);
  launch_scalar(dev, "alpha", 256, [&](ThreadCtx& t) {
    buf.load(t, static_cast<std::size_t>(t.global_id()));
  });
  launch_scalar(dev, "beta", 64, [&](ThreadCtx& t) {
    buf.store(t, static_cast<std::size_t>(t.global_id()), 2);
  });
  launch_scalar(dev, "alpha", 256, [&](ThreadCtx& t) {
    buf.load(t, static_cast<std::size_t>(t.global_id()));
  });
  return dev;
}

TEST(KernelProfile, ListsEveryKernelOnce) {
  const Device dev = device_with_work();
  std::ostringstream os;
  print_kernel_profile(os, dev);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  // alpha launched twice, beta once.
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("GLT(GB/s)"), std::string::npos);
}

TEST(ChromeTrace, EmitsOneEventPerLaunch) {
  const Device dev = device_with_work();
  std::ostringstream os;
  write_chrome_trace(os, dev);
  const std::string out = os.str();
  std::size_t events = 0;
  for (std::size_t pos = out.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = out.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, dev.launches().size());
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"glt_gbps\":"), std::string::npos);
}

TEST(ChromeTrace, TimestampsAreMonotone) {
  const Device dev = device_with_work();
  std::ostringstream os;
  write_chrome_trace(os, dev);
  const std::string out = os.str();
  double prev = -1.0;
  for (std::size_t pos = out.find("\"ts\":"); pos != std::string::npos;
       pos = out.find("\"ts\":", pos + 1)) {
    const double ts = std::stod(out.substr(pos + 5));
    EXPECT_GT(ts, prev);
    prev = ts;
  }
  EXPECT_GE(prev, 0.0);
}

TEST(ChromeTrace, EmptyDeviceYieldsEmptyArray) {
  Device dev;
  std::ostringstream os;
  write_chrome_trace(os, dev);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace turbobc::sim
