#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"
#include "gpusim/topology.hpp"

namespace turbobc::sim {
namespace {

// Round-number link so every expectation below is hand-computable: 1 us
// latency, 1 GB/s -> a 1000-byte block costs exactly 2 us.
constexpr LinkProps kLink{1e9, 1e-6};

TopologyProps pcie_props(int k) {
  TopologyProps p;
  p.num_devices = k;
  p.pcie = kLink;
  p.nvlink = false;
  return p;
}

TopologyProps nvlink_props(int k) {
  TopologyProps p;
  p.num_devices = k;
  p.peer = kLink;
  p.nvlink = true;
  return p;
}

TEST(Topology, CopyTimeIsLatencyPlusBytesOverBandwidth) {
  EXPECT_DOUBLE_EQ(Topology::copy_time(kLink, 1000), 1e-6 + 1000.0 / 1e9);
  EXPECT_DOUBLE_EQ(Topology::copy_time(kLink, 0), 1e-6);
}

TEST(Topology, RingAllGatherTimeIsKMinusOnePipelineSteps) {
  // K=4, 1000 B/rank: 3 steps of (1 us + 1 us) = 6 us.
  EXPECT_DOUBLE_EQ(
      Topology::all_gather_time(kLink, CollectiveAlgo::kRing, 4, 1000),
      6e-6);
  EXPECT_DOUBLE_EQ(
      Topology::all_gather_time(kLink, CollectiveAlgo::kRing, 1, 1000), 0.0);
}

TEST(Topology, StarAllGatherTimeIsUploadPlusDownloadPhases) {
  // K=4, 1000 B/rank: upload 4*(1us + 1us) = 8 us, download
  // 4*(1us + 3000B/bw = 3us) = 16 us -> 24 us total.
  EXPECT_DOUBLE_EQ(
      Topology::all_gather_time(kLink, CollectiveAlgo::kStar, 4, 1000),
      24e-6);
}

TEST(Topology, RingAllReduceTimeUsesChunkedSteps) {
  // K=4, 4000 B: chunk = 1000 B, 2*(K-1) = 6 steps of 2 us = 12 us.
  EXPECT_DOUBLE_EQ(
      Topology::all_reduce_time(kLink, CollectiveAlgo::kRing, 4, 4000),
      12e-6);
  // Non-divisible size rounds the chunk up: B=10 over K=4 -> 3-byte chunks.
  EXPECT_DOUBLE_EQ(
      Topology::all_reduce_time(kLink, CollectiveAlgo::kRing, 4, 10),
      6.0 * (1e-6 + 3.0 / 1e9));
}

TEST(Topology, StarAllReduceTimeIsTwoFullPasses) {
  // K=4, 4000 B: 2*4*(1us + 4us) = 40 us.
  EXPECT_DOUBLE_EQ(
      Topology::all_reduce_time(kLink, CollectiveAlgo::kStar, 4, 4000),
      40e-6);
}

TEST(Topology, CollectiveBytesPerDeviceAreLogicalPayload) {
  // all_gather: K-1 foreign blocks regardless of schedule.
  EXPECT_EQ(Topology::all_gather_bytes_per_device(CollectiveAlgo::kRing, 4,
                                                  1000),
            3000u);
  EXPECT_EQ(Topology::all_gather_bytes_per_device(CollectiveAlgo::kStar, 4,
                                                  1000),
            3000u);
  // ring all_reduce: 2(K-1) chunk transfers per device.
  EXPECT_EQ(Topology::all_reduce_bytes_per_device(CollectiveAlgo::kRing, 4,
                                                  4000),
            6000u);
  // star all_reduce: one upload + one download of the vector.
  EXPECT_EQ(Topology::all_reduce_bytes_per_device(CollectiveAlgo::kStar, 4,
                                                  4000),
            4000u);
  EXPECT_EQ(Topology::all_reduce_bytes_per_device(CollectiveAlgo::kRing, 1,
                                                  4000),
            0u);
}

TEST(Topology, DefaultAlgoFollowsInterconnect) {
  EXPECT_EQ(pcie_props(4).default_algo(), CollectiveAlgo::kStar);
  EXPECT_EQ(nvlink_props(4).default_algo(), CollectiveAlgo::kRing);
}

TEST(Topology, AllGatherChargesEveryDeviceAndConservesBytes) {
  Topology topo(pcie_props(4));
  const double t = topo.all_gather(1000);
  EXPECT_DOUBLE_EQ(t, 24e-6);
  EXPECT_DOUBLE_EQ(topo.comm_seconds(), t);
  EXPECT_EQ(topo.comm_bytes_total(), 4u * 3000u);
  ASSERT_EQ(topo.ops().size(), 1u);
  EXPECT_EQ(topo.ops()[0].kind, CommOp::Kind::kAllGather);
  EXPECT_EQ(topo.ops()[0].algo, CollectiveAlgo::kStar);
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(topo.device(k).comm_seconds(), t);
    EXPECT_EQ(topo.device(k).comm_bytes_sent(), 3000u);
    sent += topo.device(k).comm_bytes_sent();
    received += topo.device(k).comm_bytes_received();
  }
  EXPECT_EQ(sent, received);
}

TEST(Topology, NvlinkCollectivesDefaultToRing) {
  Topology topo(nvlink_props(4));
  EXPECT_DOUBLE_EQ(topo.all_gather(1000), 6e-6);
  EXPECT_DOUBLE_EQ(topo.all_reduce(4000), 12e-6);
  ASSERT_EQ(topo.ops().size(), 2u);
  EXPECT_EQ(topo.ops()[0].algo, CollectiveAlgo::kRing);
  EXPECT_EQ(topo.ops()[1].algo, CollectiveAlgo::kRing);
}

TEST(Topology, ExplicitAlgoOverridesDefault) {
  Topology topo(pcie_props(4));
  EXPECT_DOUBLE_EQ(topo.all_gather(1000, CollectiveAlgo::kRing), 6e-6);
}

TEST(Topology, CopyChargesSenderAndReceiverAsymmetrically) {
  Topology topo(pcie_props(4));
  const double t = topo.device_to_device_copy(1, 3, 1000);
  EXPECT_DOUBLE_EQ(t, 2e-6);
  EXPECT_EQ(topo.device(1).comm_bytes_sent(), 1000u);
  EXPECT_EQ(topo.device(1).comm_bytes_received(), 0u);
  EXPECT_EQ(topo.device(3).comm_bytes_sent(), 0u);
  EXPECT_EQ(topo.device(3).comm_bytes_received(), 1000u);
  EXPECT_EQ(topo.device(0).comm_bytes_sent(), 0u);
  EXPECT_EQ(topo.comm_bytes_total(), 1000u);
}

TEST(Topology, DegenerateOperationsAreFreeNoOps) {
  Topology topo(pcie_props(4));
  EXPECT_DOUBLE_EQ(topo.device_to_device_copy(2, 2, 1000), 0.0);
  EXPECT_DOUBLE_EQ(topo.all_gather(0), 0.0);
  EXPECT_DOUBLE_EQ(topo.all_reduce(0), 0.0);
  Topology solo(pcie_props(1));
  EXPECT_DOUBLE_EQ(solo.all_gather(1000), 0.0);
  EXPECT_DOUBLE_EQ(solo.all_reduce(1000), 0.0);
  EXPECT_TRUE(topo.ops().empty());
  EXPECT_TRUE(solo.ops().empty());
  EXPECT_EQ(topo.comm_bytes_total(), 0u);
}

TEST(Topology, ResetCommClearsTopologyLedgerOnly) {
  Topology topo(pcie_props(2));
  topo.all_reduce(1000);
  ASSERT_FALSE(topo.ops().empty());
  topo.reset_comm();
  EXPECT_TRUE(topo.ops().empty());
  EXPECT_DOUBLE_EQ(topo.comm_seconds(), 0.0);
  EXPECT_EQ(topo.comm_bytes_total(), 0u);
  // Per-device ledgers keep their history (reset via Device::reset_timeline).
  EXPECT_GT(topo.device(0).comm_bytes_sent(), 0u);
}

TEST(Topology, CopyEndpointValidation) {
  Topology topo(pcie_props(2));
  EXPECT_THROW(topo.device_to_device_copy(0, 2, 16), InvalidArgument);
  EXPECT_THROW(topo.device_to_device_copy(-1, 0, 16), InvalidArgument);
}

}  // namespace
}  // namespace turbobc::sim
