#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gpusim/buffer.hpp"
#include "gpusim/device.hpp"

namespace turbobc::sim {
namespace {

DeviceProps tiny_device(std::size_t capacity) {
  DeviceProps p = DeviceProps::titan_xp();
  p.global_mem_bytes = capacity;
  return p;
}

TEST(MemoryManager, TracksLiveAndPeak) {
  MemoryManager mm(1000);
  mm.allocate(400);
  EXPECT_EQ(mm.live_bytes(), 400u);
  mm.allocate(300);
  EXPECT_EQ(mm.live_bytes(), 700u);
  EXPECT_EQ(mm.peak_bytes(), 700u);
  mm.release(400);
  EXPECT_EQ(mm.live_bytes(), 300u);
  EXPECT_EQ(mm.peak_bytes(), 700u);  // peak is a high-water mark
}

TEST(MemoryManager, ThrowsOnOverCapacity) {
  MemoryManager mm(1000);
  mm.allocate(900);
  EXPECT_THROW(mm.allocate(200), DeviceOutOfMemory);
  // Failed allocation must not corrupt the accounting.
  EXPECT_EQ(mm.live_bytes(), 900u);
  mm.release(900);
  EXPECT_EQ(mm.live_bytes(), 0u);
}

TEST(MemoryManager, OomErrorCarriesContext) {
  MemoryManager mm(100);
  try {
    mm.allocate(200);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested_bytes(), 200u);
    EXPECT_EQ(e.live_bytes(), 0u);
    EXPECT_EQ(e.capacity_bytes(), 100u);
  }
}

TEST(MemoryManager, AddressesAreDistinctAndAligned) {
  MemoryManager mm(1 << 20);
  const auto a = mm.allocate(10);
  const auto b = mm.allocate(10);
  EXPECT_NE(a, b);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GE(b, a + 10);
}

TEST(MemoryManager, ResetPeakKeepsLive) {
  MemoryManager mm(1000);
  mm.allocate(500);
  mm.release(500);
  mm.allocate(100);
  mm.reset_peak();
  EXPECT_EQ(mm.peak_bytes(), 100u);
}

TEST(DeviceBuffer, RegistersAndReleases) {
  Device dev(tiny_device(1 << 20));
  {
    DeviceBuffer<int> buf(dev, 100, "x");
    EXPECT_EQ(dev.memory().live_bytes(), 400u);
    EXPECT_EQ(buf.size(), 100u);
  }
  EXPECT_EQ(dev.memory().live_bytes(), 0u);
  EXPECT_EQ(dev.memory().alloc_count(), 1u);
  EXPECT_EQ(dev.memory().free_count(), 1u);
}

TEST(DeviceBuffer, ConstructionThrowsWhenTooBig) {
  Device dev(tiny_device(100));
  EXPECT_THROW(DeviceBuffer<double>(dev, 1000, "big"), DeviceOutOfMemory);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  Device dev(tiny_device(1 << 20));
  DeviceBuffer<int> a(dev, 10, "a");
  const auto addr = a.base_addr();
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b.base_addr(), addr);
  EXPECT_EQ(dev.memory().live_bytes(), 40u);
}

TEST(DeviceBuffer, CopyFromHostChargesTransfer) {
  Device dev(tiny_device(1 << 20));
  DeviceBuffer<int> buf(dev, 4, "x");
  const double before = dev.transfer_seconds();
  buf.copy_from_host(std::vector<int>{1, 2, 3, 4});
  EXPECT_GT(dev.transfer_seconds(), before);
  EXPECT_EQ(buf.host()[2], 3);
}

TEST(DeviceBuffer, CopyFromHostRejectsSizeMismatch) {
  Device dev(tiny_device(1 << 20));
  DeviceBuffer<int> buf(dev, 4, "x");
  EXPECT_THROW(buf.copy_from_host(std::vector<int>{1, 2}), InvalidArgument);
}

TEST(DeviceBuffer, DeviceFillSetsValuesAndChargesKernelTime) {
  Device dev(tiny_device(1 << 20));
  DeviceBuffer<int> buf(dev, 8, "x");
  const double before = dev.kernel_seconds();
  buf.device_fill(7);
  EXPECT_GT(dev.kernel_seconds(), before);
  for (const int v : buf.host()) EXPECT_EQ(v, 7);
}

TEST(Device, AllocOverheadAccumulates) {
  Device dev(tiny_device(1 << 20));
  const double before = dev.overhead_seconds();
  { DeviceBuffer<int> buf(dev, 4, "x"); }
  // One cudaMalloc + one cudaFree.
  EXPECT_DOUBLE_EQ(dev.overhead_seconds() - before,
                   2 * dev.props().alloc_overhead_s);
}

TEST(Device, ScaledMemoryFactorScalesCapacity) {
  const auto full = DeviceProps::titan_xp();
  const auto half = DeviceProps::titan_xp_scaled_memory(0.5);
  EXPECT_EQ(half.global_mem_bytes, full.global_mem_bytes / 2);
}

}  // namespace
}  // namespace turbobc::sim
