#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/buffer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"

namespace turbobc::sim {
namespace {

TEST(LaunchScalar, ExecutesEveryThreadOnce) {
  Device dev;
  DeviceBuffer<int> out(dev, 100, "out");
  out.device_fill(0);
  launch_scalar(dev, "mark", 100, [&](ThreadCtx& t) {
    out.store(t, static_cast<std::size_t>(t.global_id()),
              static_cast<int>(t.global_id()) + 1);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out.host()[i], i + 1);
}

TEST(LaunchScalar, RecordsLaunchWithWarpCount) {
  Device dev;
  launch_scalar(dev, "noop", 100, [&](ThreadCtx&) {});
  ASSERT_EQ(dev.launches().size(), 1u);
  EXPECT_EQ(dev.launches()[0].kernel, "noop");
  EXPECT_EQ(dev.launches()[0].warps, 4u);  // ceil(100/32)
}

TEST(LaunchScalar, ZeroThreadsStillCommitsARecord) {
  Device dev;
  launch_scalar(dev, "empty", 0, [&](ThreadCtx&) { FAIL(); });
  ASSERT_EQ(dev.launches().size(), 1u);
  EXPECT_EQ(dev.launches()[0].warps, 0u);
}

TEST(LaunchScalar, CoalescedAccessPatternYieldsFewTransactions) {
  Device dev;
  DeviceBuffer<int> buf(dev, 1024, "x");
  launch_scalar(dev, "stream", 1024, [&](ThreadCtx& t) {
    buf.load(t, static_cast<std::size_t>(t.global_id()));
  });
  // 1024 consecutive 4 B loads = 4096 B = 128 sectors.
  EXPECT_EQ(dev.launches()[0].load_transactions, 128u);
}

TEST(LaunchScalar, StridedAccessPatternYieldsManyTransactions) {
  Device dev;
  DeviceBuffer<int> buf(dev, 1024 * 64, "x");
  launch_scalar(dev, "strided", 1024, [&](ThreadCtx& t) {
    buf.load(t, static_cast<std::size_t>(t.global_id()) * 64);
  });
  // Each lane lands in its own sector.
  EXPECT_EQ(dev.launches()[0].load_transactions, 1024u);
}

TEST(LaunchScalar, DivergentWorkRaisesCriticalPath) {
  Device dev;
  DeviceBuffer<int> buf(dev, 100000, "x");
  // Lane 0 of warp 0 walks 10000 elements; everyone else does one load.
  launch_scalar(dev, "skewed", 64, [&](ThreadCtx& t) {
    if (t.global_id() == 0) {
      for (int k = 0; k < 10000; ++k) buf.load(t, static_cast<std::size_t>(k));
    } else {
      buf.load(t, static_cast<std::size_t>(t.global_id()));
    }
  });
  EXPECT_GE(dev.launches()[0].max_warp_slots, 10000u);
}

TEST(LaunchScalar, AtomicAddAccumulatesAcrossThreads) {
  Device dev;
  DeviceBuffer<long long> acc(dev, 1, "acc");
  acc.device_fill(0);
  launch_scalar(dev, "sum", 1000, [&](ThreadCtx& t) {
    acc.atomic_add(t, 0, static_cast<long long>(t.global_id()));
  });
  EXPECT_EQ(acc.host()[0], 999LL * 1000 / 2);
  EXPECT_EQ(dev.launches()[0].atomic_requests, 1000u);
}

TEST(LaunchScalar, CountOpsFeedsIssueSlots) {
  Device dev;
  launch_scalar(dev, "alu", 32, [&](ThreadCtx& t) { t.count_ops(10); });
  EXPECT_EQ(dev.launches()[0].issue_slots, 10u);  // lockstep: max over lanes
}

TEST(LaunchWarp, GatherReturnsValuesForActiveLanes) {
  Device dev;
  DeviceBuffer<int> buf(dev, 64, "x");
  std::iota(buf.host().begin(), buf.host().end(), 0);
  launch_warp(dev, "gather", 1, [&](WarpCtx& w) {
    const auto vals = w.gather(buf, 0x0000ffffu,
                               [](int lane) { return lane * 2; });
    for (int lane = 0; lane < 16; ++lane) EXPECT_EQ(vals[lane], lane * 2);
    for (int lane = 16; lane < 32; ++lane) EXPECT_EQ(vals[lane], 0);
  });
}

TEST(LaunchWarp, ScatterWritesActiveLanes) {
  Device dev;
  DeviceBuffer<int> buf(dev, 32, "y");
  buf.device_fill(-1);
  launch_warp(dev, "scatter", 1, [&](WarpCtx& w) {
    w.scatter(buf, 0xfu, [](int lane) { return lane; },
              [](int lane) { return lane * lane; });
  });
  for (int lane = 0; lane < 4; ++lane) EXPECT_EQ(buf.host()[lane], lane * lane);
  EXPECT_EQ(buf.host()[4], -1);
}

TEST(LaunchWarp, AtomicAddAppliesPerLane) {
  Device dev;
  DeviceBuffer<int> buf(dev, 4, "y");
  buf.device_fill(0);
  launch_warp(dev, "watomic", 1, [&](WarpCtx& w) {
    w.atomic_add(buf, kFullMask, [](int lane) { return lane % 4; },
                 [](int) { return 1; });
  });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(buf.host()[i], 8);
}

TEST(LaunchWarp, BroadcastLoadIsOneTransaction) {
  Device dev;
  DeviceBuffer<int> buf(dev, 8, "x");
  buf.host()[3] = 77;
  launch_warp(dev, "bcast", 1, [&](WarpCtx& w) {
    EXPECT_EQ(w.broadcast_load(buf, 3), 77);
  });
  EXPECT_EQ(dev.launches()[0].load_transactions, 1u);
}

TEST(LaunchWarp, ShflDownMatchesCudaSemantics) {
  Device dev;
  launch_warp(dev, "shfl", 1, [&](WarpCtx& w) {
    std::array<int, kWarpSize> v;
    std::iota(v.begin(), v.end(), 0);
    const auto shifted = w.shfl_down(v, 4);
    for (int lane = 0; lane < 28; ++lane) EXPECT_EQ(shifted[lane], lane + 4);
    // Lanes past the end keep their own value.
    for (int lane = 28; lane < 32; ++lane) EXPECT_EQ(shifted[lane], lane);
  });
}

TEST(LaunchWarp, ReduceAddSumsAllLanes) {
  Device dev;
  launch_warp(dev, "reduce", 1, [&](WarpCtx& w) {
    std::array<int, kWarpSize> v;
    std::iota(v.begin(), v.end(), 1);  // 1..32
    EXPECT_EQ(w.reduce_add(v), 32 * 33 / 2);
  });
}

TEST(LaunchWarp, ReduceAddWorksForDoubles) {
  Device dev;
  launch_warp(dev, "reduced", 1, [&](WarpCtx& w) {
    std::array<double, kWarpSize> v{};
    for (int lane = 0; lane < 32; ++lane) v[lane] = 0.5;
    EXPECT_DOUBLE_EQ(w.reduce_add(v), 16.0);
  });
}

TEST(LaunchWarp, GridStrideCoversAllWarpIds) {
  Device dev;
  DeviceBuffer<int> buf(dev, 10, "x");
  buf.device_fill(0);
  launch_warp(dev, "ids", 10, [&](WarpCtx& w) {
    w.scatter(buf, 0x1u,
              [&](int) { return static_cast<std::size_t>(w.warp_id()); },
              [&](int) { return 1; });
    EXPECT_EQ(w.num_warps(), 10u);
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(buf.host()[i], 1);
}

TEST(Device, KernelAggregatesGroupByName) {
  Device dev;
  launch_scalar(dev, "k", 32, [&](ThreadCtx& t) { t.count_ops(1); });
  launch_scalar(dev, "k", 32, [&](ThreadCtx& t) { t.count_ops(1); });
  launch_scalar(dev, "other", 32, [&](ThreadCtx& t) { t.count_ops(1); });
  const auto& agg = dev.kernel_aggregates();
  ASSERT_EQ(agg.count("k"), 1u);
  EXPECT_EQ(agg.at("k").launches, 2u);
  EXPECT_EQ(agg.at("other").launches, 1u);
}

TEST(Device, ResetTimelineClearsRecordsAndTime) {
  Device dev;
  launch_scalar(dev, "k", 32, [&](ThreadCtx& t) { t.count_ops(1); });
  EXPECT_GT(dev.kernel_seconds(), 0.0);
  dev.reset_timeline();
  EXPECT_EQ(dev.kernel_seconds(), 0.0);
  EXPECT_TRUE(dev.launches().empty());
  EXPECT_TRUE(dev.kernel_aggregates().empty());
}

TEST(Device, KeepLaunchRecordsOffStillAggregates) {
  Device dev;
  dev.set_keep_launch_records(false);
  launch_scalar(dev, "k", 32, [&](ThreadCtx& t) { t.count_ops(1); });
  EXPECT_TRUE(dev.launches().empty());
  EXPECT_EQ(dev.kernel_aggregates().at("k").launches, 1u);
}

}  // namespace
}  // namespace turbobc::sim
