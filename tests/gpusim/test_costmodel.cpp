#include <gtest/gtest.h>

#include <vector>

#include "gpusim/costmodel.hpp"

namespace turbobc::sim {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  DeviceProps props_ = DeviceProps::titan_xp();
  CostModel cm_{DeviceProps::titan_xp()};
  LaunchRecord rec_;
};

TEST_F(CostModelTest, CoalescedWarpLoadIsFourSectors) {
  // 32 lanes loading consecutive 4-byte words = 128 B = four 32 B sectors.
  std::vector<Access> acc;
  for (int lane = 0; lane < 32; ++lane) {
    acc.push_back({0x1000 + static_cast<std::uint64_t>(lane) * 4, 4,
                   MemOp::kLoad});
  }
  cm_.process_slot(rec_, acc.data(), 32);
  EXPECT_EQ(rec_.load_transactions, 4u);
  EXPECT_EQ(rec_.load_requests, 32u);
}

TEST_F(CostModelTest, ScatteredWarpLoadIsThirtyTwoSectors) {
  std::vector<Access> acc;
  for (int lane = 0; lane < 32; ++lane) {
    acc.push_back({0x1000 + static_cast<std::uint64_t>(lane) * 4096, 4,
                   MemOp::kLoad});
  }
  const auto slots = cm_.process_slot(rec_, acc.data(), 32);
  EXPECT_EQ(rec_.load_transactions, 32u);
  EXPECT_EQ(slots, 32u);  // one replay per transaction
}

TEST_F(CostModelTest, BroadcastLoadIsOneSector) {
  std::vector<Access> acc(32, Access{0x2000, 4, MemOp::kLoad});
  cm_.process_slot(rec_, acc.data(), 32);
  EXPECT_EQ(rec_.load_transactions, 1u);
}

TEST_F(CostModelTest, StraddlingAccessTouchesTwoSectors) {
  Access a{0x101e, 4, MemOp::kLoad};  // crosses the 0x1020 boundary
  cm_.process_slot(rec_, &a, 1);
  EXPECT_EQ(rec_.load_transactions, 2u);
}

TEST_F(CostModelTest, FirstTouchMissesThenHits) {
  Access a{0x5000, 4, MemOp::kLoad};
  cm_.process_slot(rec_, &a, 1);
  EXPECT_EQ(rec_.dram_transactions, 1u);
  EXPECT_EQ(rec_.l2_hit_transactions, 0u);
  cm_.process_slot(rec_, &a, 1);
  EXPECT_EQ(rec_.dram_transactions, 1u);
  EXPECT_EQ(rec_.l2_hit_transactions, 1u);
}

TEST_F(CostModelTest, ResetL2ForgetsContents) {
  Access a{0x5000, 4, MemOp::kLoad};
  cm_.process_slot(rec_, &a, 1);
  cm_.reset_l2();
  cm_.process_slot(rec_, &a, 1);
  EXPECT_EQ(rec_.dram_transactions, 2u);
}

TEST_F(CostModelTest, DirectMappedConflictEvicts) {
  // Two sectors that collide in the direct-mapped array evict each other.
  const std::uint64_t lines = props_.l2_bytes / props_.sector_bytes;
  Access a{0x0, 4, MemOp::kLoad};
  Access b{lines * static_cast<std::uint64_t>(props_.sector_bytes), 4,
           MemOp::kLoad};
  cm_.process_slot(rec_, &a, 1);
  cm_.process_slot(rec_, &b, 1);  // evicts a
  cm_.process_slot(rec_, &a, 1);  // misses again
  EXPECT_EQ(rec_.dram_transactions, 3u);
}

TEST_F(CostModelTest, ContendedAtomicsSerialize) {
  // 32 atomics to the same address: 1 transaction, 31 extra serialization
  // slots on top of the issue.
  std::vector<Access> acc(32, Access{0x3000, 8, MemOp::kAtomic});
  const auto slots = cm_.process_slot(rec_, acc.data(), 32);
  EXPECT_EQ(rec_.store_transactions, 1u);
  EXPECT_EQ(slots, 1u + 31u);
  EXPECT_EQ(rec_.atomic_requests, 32u);
}

TEST_F(CostModelTest, UncontendedAtomicsDoNotSerialize) {
  std::vector<Access> acc;
  for (int lane = 0; lane < 32; ++lane) {
    acc.push_back({0x3000 + static_cast<std::uint64_t>(lane) * 8, 8,
                   MemOp::kAtomic});
  }
  const auto slots = cm_.process_slot(rec_, acc.data(), 32);
  EXPECT_EQ(slots, 8u);  // 8 sectors, no contention
}

TEST_F(CostModelTest, FloatAtomicsCostMore) {
  std::vector<Access> icc(4, Access{0x3000, 8, MemOp::kAtomic});
  LaunchRecord ri;
  const auto int_slots = cm_.process_slot(ri, icc.data(), 4);

  std::vector<Access> fcc(4, Access{0x3000, 8, MemOp::kAtomicFloat});
  LaunchRecord rf;
  const auto float_slots = cm_.process_slot(rf, fcc.data(), 4);
  EXPECT_EQ(float_slots, int_slots * CostModel::kFloatAtomicPenalty);
}

TEST_F(CostModelTest, StoresCountAsStoreTransactions) {
  std::vector<Access> acc;
  for (int lane = 0; lane < 8; ++lane) {
    acc.push_back({0x4000 + static_cast<std::uint64_t>(lane) * 4, 4,
                   MemOp::kStore});
  }
  cm_.process_slot(rec_, acc.data(), 8);
  EXPECT_EQ(rec_.store_transactions, 1u);
  EXPECT_EQ(rec_.load_transactions, 0u);
  EXPECT_EQ(rec_.store_requests, 8u);
}

TEST_F(CostModelTest, FinalizeIncludesLaunchOverhead) {
  const double t = cm_.finalize(rec_);
  EXPECT_GE(t, props_.kernel_launch_overhead_s);
  EXPECT_DOUBLE_EQ(rec_.time_s, t);
}

TEST_F(CostModelTest, CriticalPathBoundsSmallLaunches) {
  // A single warp with a huge slot count must be bounded by the per-warp
  // dependent-issue rate, not the whole-device throughput.
  rec_.issue_slots = 1000;
  rec_.max_warp_slots = 1000;
  cm_.finalize(rec_);
  const double critical =
      1000 * props_.cycles_per_dependent_slot / props_.clock_hz;
  EXPECT_GE(rec_.time_s, critical);
}

TEST_F(CostModelTest, GltAboveDramPeakWhenCacheHitsDominate) {
  // Load the same sectors many times: all hits after the first pass, so the
  // modeled GLT can exceed the DRAM bandwidth (the paper's Figure 5b effect).
  LaunchRecord rec;
  std::vector<Access> acc;
  for (int lane = 0; lane < 32; ++lane) {
    acc.push_back({0x9000 + static_cast<std::uint64_t>(lane) * 4, 4,
                   MemOp::kLoad});
  }
  std::uint64_t max_warp = 0;
  for (int rep = 0; rep < 200000; ++rep) {
    max_warp += cm_.process_slot(rec, acc.data(), 32);
  }
  rec.warps = 100000;  // plenty of parallel warps: throughput-bound
  rec.max_warp_slots = 8;
  cm_.finalize(rec);
  EXPECT_GT(rec.glt_bps(props_.sector_bytes), props_.dram_bandwidth_bps);
}

TEST_F(CostModelTest, MemsetTimeScalesWithBytes) {
  EXPECT_GT(cm_.memset_time(1 << 20), cm_.memset_time(1 << 10));
  EXPECT_GE(cm_.memset_time(0), props_.kernel_launch_overhead_s);
}

TEST_F(CostModelTest, TransferTimeHasFixedLatency) {
  EXPECT_GE(cm_.transfer_time(4), props_.pcie_latency_s);
}

TEST_F(CostModelTest, EmptySlotIsFree) {
  EXPECT_EQ(cm_.process_slot(rec_, nullptr, 0), 0u);
  EXPECT_EQ(rec_.issue_slots, 0u);
}

}  // namespace
}  // namespace turbobc::sim
