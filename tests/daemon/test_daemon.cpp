// Daemon tests: golden wire sessions over a real socket (text and JSON,
// byte-identical across executor-pool widths per epoch), the error paths
// (malformed frame, oversized line, abrupt disconnect), and the scheduler's
// BUSY backpressure under a full update queue.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "daemon/scheduler.hpp"
#include "daemon/server.hpp"
#include "daemon/socket.hpp"
#include "gpusim/executor.hpp"
#include "graph/edge_list.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace turbobc::daemon {
namespace {

/// 0-1-2-3-4 path, undirected: tiny, fully deterministic BC.
graph::EdgeList path5() {
  graph::EdgeList g(5, false);
  for (vidx_t v = 0; v + 1 < 5; ++v) {
    g.add_edge(v, v + 1);
    g.add_edge(v + 1, v);
  }
  g.canonicalize();
  return g;
}

/// Restore the executor pool width on scope exit.
class PoolWidthGuard {
 public:
  explicit PoolWidthGuard(unsigned width)
      : saved_(sim::ExecutorPool::instance().threads()) {
    sim::ExecutorPool::instance().set_threads(width);
  }
  ~PoolWidthGuard() { sim::ExecutorPool::instance().set_threads(saved_); }

 private:
  unsigned saved_;
};

std::string recv_all(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

DaemonOptions loopback_options(bool json = false, std::size_t max_line = 4096) {
  DaemonOptions opt;
  opt.listen = "127.0.0.1:0";  // ephemeral port per test
  opt.json = json;
  opt.top = 3;
  opt.max_line = max_line;
  return opt;
}

/// Drive one full connection: send `script`, half-close, read the whole
/// response stream, then stop the server.
std::string daemon_transcript(const std::string& script,
                              const DaemonOptions& opt) {
  DaemonServer server(path5(), opt);
  server.start();
  const int fd = connect_socket(server.bound());
  EXPECT_TRUE(send_all(fd, script));
  shutdown_write(fd);
  const std::string out = recv_all(fd);
  close_socket(fd);
  server.stop();
  return out;
}

/// The same command sequence through the in-process session runner in wire
/// mode — the transcript the daemon must reproduce byte for byte.
std::string session_transcript(const std::string& script, bool json) {
  std::istringstream in(script);
  std::ostringstream out;
  serve::SessionOptions opt;
  opt.top = 3;
  opt.json = json;
  opt.wire = true;
  serve::run_session(path5(), opt, in, out);
  return out.str();
}

constexpr const char* kMixedScript =
    "bc 3\n"
    "insert 0 4\n"
    "bc 3\n"
    "top 2\n"
    "delete 0 4\n"
    "bc 3\n"
    "stats\n";

TEST(DaemonWire, GoldenTextSession) {
  const std::string got = daemon_transcript(kMixedScript, loopback_options());
  // Pinned transcript: epoch stamps advance only on applied updates, and the
  // bc digest at epoch 2 (insert 0-4 then delete 0-4) returns to the epoch-0
  // digest bit for bit.
  const std::string want =
      "serve: n=5 m=8 directed=no epoch=0\n"
      "bc: epoch=0 digest=efded9dc5b29e6f5 top 3 of 5\n"
      "  1. v=2 bc=4.000000\n"
      "  2. v=1 bc=3.000000\n"
      "  3. v=3 bc=3.000000\n"
      "insert 0 4: applied epoch=1\n"
      "bc: epoch=1 digest=33e81a0dcc8f3478 top 3 of 5\n"
      "  1. v=0 bc=1.000000\n"
      "  2. v=1 bc=1.000000\n"
      "  3. v=2 bc=1.000000\n"
      "top: epoch=1 0 1\n"
      "delete 0 4: applied epoch=2\n"
      "bc: epoch=2 digest=efded9dc5b29e6f5 top 3 of 5\n"
      "  1. v=2 bc=4.000000\n"
      "  2. v=1 bc=3.000000\n"
      "  3. v=3 bc=3.000000\n"
      "stats: epoch=2 queries=4 updates=2 noop=0 recomputed=13 cached=7 "
      "invalidated=8 device_s=";
  ASSERT_GE(got.size(), want.size());
  EXPECT_EQ(got.substr(0, want.size()), want);
}

TEST(DaemonWire, MatchesServeScriptByteForByte) {
  for (const bool json : {false, true}) {
    const std::string daemon_out =
        daemon_transcript(kMixedScript, loopback_options(json));
    const std::string session_out = session_transcript(kMixedScript, json);
    EXPECT_EQ(daemon_out, session_out) << "json=" << json;
  }
}

TEST(DaemonWire, ByteIdenticalAcrossPoolWidths) {
  for (const bool json : {false, true}) {
    std::string at_width_1, at_width_8;
    {
      PoolWidthGuard guard(1);
      at_width_1 = daemon_transcript(kMixedScript, loopback_options(json));
    }
    {
      PoolWidthGuard guard(8);
      at_width_8 = daemon_transcript(kMixedScript, loopback_options(json));
    }
    EXPECT_EQ(at_width_1, at_width_8) << "json=" << json;
    // Sanity: the transcript really reached the final epoch in both renders.
    EXPECT_NE(at_width_1.find(json ? "\"epoch\":2" : "epoch=2"),
              std::string::npos);
  }
}

TEST(DaemonWire, JsonSessionStampsEveryEventWithEpoch) {
  const std::string got =
      daemon_transcript(kMixedScript, loopback_options(/*json=*/true));
  std::istringstream lines(got);
  std::string line;
  std::size_t events = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"epoch\":"), std::string::npos) << line;
    ++events;
  }
  EXPECT_EQ(events, 8u);  // hello + 7 responses
}

TEST(DaemonErrors, MalformedFrameAnswersErrorAndKeepsConnection) {
  const std::string got = daemon_transcript(
      "bogus 1 2\n"
      "top 2\n",
      loopback_options());
  EXPECT_NE(got.find("error: serve: unknown command 'bogus'"),
            std::string::npos)
      << got;
  // The connection survived the bad frame: the next command still answers.
  EXPECT_NE(got.find("top: epoch=0 2 1"), std::string::npos) << got;
}

TEST(DaemonErrors, OversizedLineClosesWithError) {
  const std::string got = daemon_transcript(
      std::string(256, 'x') + "\ntop 2\n",
      loopback_options(/*json=*/false, /*max_line=*/64));
  EXPECT_NE(got.find("error: line exceeds 64 bytes"), std::string::npos)
      << got;
  // The stream is unframed after an overflow: the connection closes and the
  // trailing command is never answered.
  EXPECT_EQ(got.find("top:"), std::string::npos) << got;
}

TEST(DaemonErrors, AbruptDisconnectLeavesServerServing) {
  DaemonServer server(path5(), loopback_options());
  server.start();

  // First client vanishes mid-session without a half-close handshake.
  const int fd1 = connect_socket(server.bound());
  EXPECT_TRUE(send_all(fd1, "bc 2\n"));
  close_socket(fd1);  // abrupt: responses may race the close; must not wedge

  // A second client gets a full, correct session afterwards.
  const int fd2 = connect_socket(server.bound());
  EXPECT_TRUE(send_all(fd2, "top 2\n"));
  shutdown_write(fd2);
  const std::string got = recv_all(fd2);
  close_socket(fd2);
  server.stop();

  EXPECT_NE(got.find("serve: n=5"), std::string::npos) << got;
  EXPECT_NE(got.find("top: epoch=0 2 1"), std::string::npos) << got;
  EXPECT_EQ(server.connections_accepted(), 2u);
}

TEST(DaemonScheduler, BusyUnderFullUpdateQueue) {
  Scheduler::Options sched;
  sched.update_queue_limit = 2;
  Scheduler scheduler(path5(), {}, sched);
  const serve::RenderOptions render{/*json=*/false, /*wire=*/true};

  serve::Command insert;
  insert.kind = serve::Command::kInsert;
  insert.u = 0;
  insert.v = 4;

  // Freeze the reader side so admitted updates queue on the exclusive lock.
  auto readers = scheduler.hold_readers_for_test();

  std::vector<std::thread> writers;
  std::vector<std::string> responses(2);
  for (std::size_t i = 0; i < 2; ++i) {
    writers.emplace_back([&, i] {
      responses[i] = scheduler.execute(insert, render);
    });
  }
  // Both updates must be ADMITTED (ticketed), not answered, while readers
  // hold the lock.
  while (scheduler.pending_updates() < 2) std::this_thread::yield();

  // The queue is full: the next update bounces immediately with BUSY even
  // though the lock is still held — backpressure, never a silent drop.
  const std::string busy = scheduler.execute(insert, render);
  EXPECT_NE(busy.find("busy: update queue full (pending=2 limit=2)"),
            std::string::npos)
      << busy;

  readers.unlock();  // drain: both admitted updates now apply
  for (std::thread& t : writers) t.join();

  // Exactly one of the two identical inserts applied; both were answered.
  std::size_t applied = 0, noop = 0;
  for (const std::string& r : responses) {
    if (r.find(": applied") != std::string::npos) ++applied;
    if (r.find(": no-op") != std::string::npos) ++noop;
  }
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(noop, 1u);

  const auto m = scheduler.metrics();
  EXPECT_EQ(m.updates, 2u);
  EXPECT_EQ(m.busy, 1u);
  EXPECT_EQ(m.epoch, 1u);
  EXPECT_EQ(m.queue_depth, 0u);

  // The epoch-ordered update log recorded both admitted updates, in order.
  const auto log = scheduler.update_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].applied);
  EXPECT_FALSE(log[1].applied);
  EXPECT_EQ(log[0].epoch, 1u);
  EXPECT_EQ(log[1].epoch, 1u);
}

TEST(DaemonScheduler, MetricsCountQueriesAndRenderBothFormats) {
  Scheduler scheduler(path5(), {}, {});
  const serve::RenderOptions text{false, true};
  const serve::RenderOptions json{true, true};

  serve::Command bc;
  bc.kind = serve::Command::kBc;
  bc.k = 2;
  serve::Command top;
  top.kind = serve::Command::kTop;
  top.k = 2;
  scheduler.execute(bc, text);
  scheduler.execute(top, text);

  const auto m = scheduler.metrics();
  EXPECT_EQ(m.queries, 2u);
  EXPECT_EQ(m.updates, 0u);
  EXPECT_GT(m.modeled_query_seconds, 0.0);
  EXPECT_GE(m.modeled_makespan_seconds, 0.0);
  EXPECT_GE(m.p99_micros, m.p50_micros);

  const std::string t = scheduler.render_metrics(text);
  EXPECT_EQ(t.rfind("metrics: epoch=0 queries=2 updates=0 busy=0 errors=0 "
                    "queue=0/8",
                    0),
            0u)
      << t;
  const std::string j = scheduler.render_metrics(json);
  EXPECT_EQ(j.rfind("{\"event\":\"metrics\"", 0), 0u) << j;
  EXPECT_NE(j.find("\"queries\":2"), std::string::npos) << j;
}

// ---------------------------------------------------------------------------
// bucket_quantile: exact-rank pins. The quantile's rank is the CEILING of
// q * total — the truncation bug reported the p50 of 3 samples as the 1st
// sample's bucket and collapsed sub-100-sample p99s toward the minimum.

TEST(BucketQuantile, EmptyHistogramIsZero) {
  std::uint64_t buckets[64] = {};
  EXPECT_EQ(bucket_quantile(buckets, 0.50), 0u);
  EXPECT_EQ(bucket_quantile(buckets, 0.99), 0u);
}

TEST(BucketQuantile, SingleSampleReportsItsBucket) {
  std::uint64_t buckets[64] = {};
  buckets[5] = 1;  // one sample in (2^4, 2^5]
  EXPECT_EQ(bucket_quantile(buckets, 0.50), 1ull << 5);
  EXPECT_EQ(bucket_quantile(buckets, 0.99), 1ull << 5);
  // Bucket 0 reports its inclusive upper bound of 1 microsecond.
  std::uint64_t fast[64] = {};
  fast[0] = 1;
  EXPECT_EQ(bucket_quantile(fast, 0.50), 1u);
}

TEST(BucketQuantile, OddTotalCeilsTheRank) {
  // Samples in buckets 2, 4, 6: the p50 of 3 samples is the 2nd one
  // (ceil(0.5 * 3) = 2), i.e. bucket 4. The truncated rank asked for the
  // 1st and reported bucket 2.
  std::uint64_t buckets[64] = {};
  buckets[2] = 1;
  buckets[4] = 1;
  buckets[6] = 1;
  EXPECT_EQ(bucket_quantile(buckets, 0.50), 1ull << 4);
  // p99 of 3 samples: ceil(2.97) = 3rd sample, the maximum.
  EXPECT_EQ(bucket_quantile(buckets, 0.99), 1ull << 6);
}

TEST(BucketQuantile, EvenTotalKeepsTheLowerMedian) {
  // 4 samples: ceil(0.5 * 4) = 2 exactly — integral ranks are unchanged by
  // the ceiling, so the even-total median stays the lower of the middle two.
  std::uint64_t buckets[64] = {};
  buckets[1] = 2;
  buckets[3] = 2;
  EXPECT_EQ(bucket_quantile(buckets, 0.50), 1ull << 1);
  EXPECT_EQ(bucket_quantile(buckets, 0.75), 1ull << 3);
}

TEST(BucketQuantile, P99NeedsTheTailSample) {
  // 99 fast samples and 1 slow one: p99 = ceil(0.99 * 100) = 99th sample
  // (still fast), p999 rounds up into the slow tail.
  std::uint64_t buckets[64] = {};
  buckets[1] = 99;
  buckets[10] = 1;
  EXPECT_EQ(bucket_quantile(buckets, 0.99), 1ull << 1);
  EXPECT_EQ(bucket_quantile(buckets, 0.999), 1ull << 10);
}

TEST(BucketQuantile, OverflowBucketHasNoUpperBound) {
  // Bucket 63 is where the histogram fill clamps; a quantile landing there
  // reports ~0 ("off the histogram") rather than a fake 2^63 bound.
  std::uint64_t buckets[64] = {};
  buckets[63] = 1;
  EXPECT_EQ(bucket_quantile(buckets, 0.50), ~0ull);
  buckets[2] = 1;
  EXPECT_EQ(bucket_quantile(buckets, 0.50), 1ull << 2);
  EXPECT_EQ(bucket_quantile(buckets, 0.99), ~0ull);
}

// ---------------------------------------------------------------------------
// Scheduler construction: zero lanes/limit used to be silently coerced to 1.

TEST(DaemonScheduler, RejectsZeroReaderLanesAndZeroQueueLimit) {
  Scheduler::Options zero_lanes;
  zero_lanes.reader_lanes = 0;
  EXPECT_THROW(Scheduler(path5(), {}, zero_lanes), InvalidArgument);

  Scheduler::Options zero_queue;
  zero_queue.update_queue_limit = 0;
  EXPECT_THROW(Scheduler(path5(), {}, zero_queue), InvalidArgument);
}

}  // namespace
}  // namespace turbobc::daemon
