#include <gtest/gtest.h>

#include <cmath>

#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "graph/bfs_probe.hpp"

namespace turbobc::bc {
namespace {

using graph::EdgeList;

void expect_bc_equal(const std::vector<bc_t>& got,
                     const std::vector<bc_t>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max({std::abs(want[i]), 1.0});
    EXPECT_NEAR(got[i], want[i], 1e-9 * scale) << what << " vertex " << i;
  }
}

/// Variant x graph-shape grid: the heart of the correctness story.
struct Case {
  const char* name;
  Variant variant;
};

class TurboBcCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(TurboBcCorrectness, SingleSourceMatchesBrandesOnRandomDirected) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto el = gen::erdos_renyi({.n = 80, .arcs = 400, .directed = true,
                                      .seed = seed});
    sim::Device dev;
    TurboBC turbo(dev, el, {.variant = GetParam().variant});
    const auto r = turbo.run_single_source(3);
    expect_bc_equal(r.bc, baseline::brandes_delta(el, 3),
                    std::string("directed seed ") + std::to_string(seed));
  }
}

TEST_P(TurboBcCorrectness, SingleSourceMatchesBrandesOnRandomUndirected) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto el = gen::erdos_renyi({.n = 80, .arcs = 300, .directed = false,
                                      .seed = seed});
    sim::Device dev;
    TurboBC turbo(dev, el, {.variant = GetParam().variant});
    const auto r = turbo.run_single_source(0);
    expect_bc_equal(r.bc, baseline::brandes_delta(el, 0),
                    std::string("undirected seed ") + std::to_string(seed));
  }
}

TEST_P(TurboBcCorrectness, ExactMatchesBrandesOnSmallGraphs) {
  const auto directed = gen::erdos_renyi({.n = 40, .arcs = 160,
                                          .directed = true, .seed = 9});
  const auto undirected = gen::mycielski(6);
  for (const auto* el : {&directed, &undirected}) {
    sim::Device dev;
    dev.set_keep_launch_records(false);
    TurboBC turbo(dev, *el, {.variant = GetParam().variant});
    const auto r = turbo.run_exact();
    expect_bc_equal(r.bc, baseline::brandes_bc(*el), "exact");
    EXPECT_EQ(r.sources, el->num_vertices());
  }
}

TEST_P(TurboBcCorrectness, HandlesDisconnectedGraphs) {
  // Two components; BC from a source only covers its component (Brandes
  // handles this by definition; Algorithm 1's sigma>0 guard must too).
  EdgeList el(10, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.add_edge(2, 3);
  el.add_edge(5, 6);
  el.add_edge(6, 7);
  el.symmetrize();
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = GetParam().variant});
  expect_bc_equal(turbo.run_single_source(0).bc,
                  baseline::brandes_delta(el, 0), "component A");
  expect_bc_equal(turbo.run_single_source(5).bc,
                  baseline::brandes_delta(el, 5), "component B");
  expect_bc_equal(turbo.run_exact().bc, baseline::brandes_bc(el),
                  "exact disconnected");
}

TEST_P(TurboBcCorrectness, PathGraphHasClosedFormBc) {
  // Path 0-1-2-3-4 (undirected): exact BC of interior vertex i is
  // (i)(n-1-i) pairs each counted once... with Brandes' halving the ends are
  // 0 and bc(1)=bc(3)=3, bc(2)=4 for n=5.
  EdgeList el(5, true);
  for (vidx_t i = 0; i + 1 < 5; ++i) el.add_edge(i, i + 1);
  el.symmetrize();
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = GetParam().variant});
  const auto r = turbo.run_exact();
  EXPECT_NEAR(r.bc[0], 0.0, 1e-12);
  EXPECT_NEAR(r.bc[1], 3.0, 1e-12);
  EXPECT_NEAR(r.bc[2], 4.0, 1e-12);
  EXPECT_NEAR(r.bc[3], 3.0, 1e-12);
  EXPECT_NEAR(r.bc[4], 0.0, 1e-12);
}

TEST_P(TurboBcCorrectness, StarGraphCenterDominates) {
  EdgeList el(7, true);
  for (vidx_t i = 1; i < 7; ++i) el.add_edge(0, i);
  el.symmetrize();
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = GetParam().variant});
  const auto r = turbo.run_exact();
  // Center lies on all C(6,2) = 15 pairs.
  EXPECT_NEAR(r.bc[0], 15.0, 1e-12);
  for (std::size_t v = 1; v < 7; ++v) EXPECT_NEAR(r.bc[v], 0.0, 1e-12);
}

TEST_P(TurboBcCorrectness, BfsDepthMatchesReference) {
  const auto el = gen::small_world({.n = 500, .k = 6, .rewire_p = 0.05,
                                    .seed = 3});
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = GetParam().variant});
  const auto r = turbo.run_single_source(17);
  const auto probe =
      graph::bfs_reference(graph::CscGraph::from_edges(el), 17);
  EXPECT_EQ(r.last_source.bfs_depth, probe.height);
  EXPECT_EQ(r.last_source.reached, probe.reached);
}

TEST_P(TurboBcCorrectness, DirectedChainDependenciesAreExact) {
  // 0 -> 1 -> 2 -> 3: delta_0 = (2, 1, 0) on vertices 1, 2 and bc from all
  // sources: bc(1) = 2, bc(2) = 2 (pairs (0,2),(0,3),(1,3)).
  EdgeList el(4, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.add_edge(2, 3);
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = GetParam().variant});
  const auto single = turbo.run_single_source(0);
  EXPECT_NEAR(single.bc[1], 2.0, 1e-12);
  EXPECT_NEAR(single.bc[2], 1.0, 1e-12);
  const auto exact = turbo.run_exact();
  EXPECT_NEAR(exact.bc[1], 2.0, 1e-12);
  EXPECT_NEAR(exact.bc[2], 2.0, 1e-12);
}

TEST_P(TurboBcCorrectness, FloatBfsAblationIsStillCorrect) {
  const auto el = gen::erdos_renyi({.n = 60, .arcs = 240, .directed = false,
                                    .seed = 13});
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = GetParam().variant, .float_bfs = true});
  expect_bc_equal(turbo.run_single_source(1).bc,
                  baseline::brandes_delta(el, 1), "float bfs");
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TurboBcCorrectness,
    ::testing::Values(Case{"scCOOC", Variant::kScCooc},
                      Case{"scCSC", Variant::kScCsc},
                      Case{"veCSC", Variant::kVeCsc}),
    [](const auto& info) { return std::string(info.param.name); });

// ------------------------------------------------------------- edge cases

TEST(TurboBc, SingleVertexGraph) {
  EdgeList el(1, true);
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCsc});
  const auto r = turbo.run_single_source(0);
  EXPECT_EQ(r.last_source.bfs_depth, 0);
  EXPECT_EQ(r.last_source.reached, 1);
  EXPECT_NEAR(r.bc[0], 0.0, 1e-12);
}

TEST(TurboBc, RejectsEmptyGraph) {
  EdgeList el(0, true);
  sim::Device dev;
  EXPECT_THROW(TurboBC(dev, el, {}), InvalidArgument);
}

TEST(TurboBc, RejectsBadSource) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  sim::Device dev;
  TurboBC turbo(dev, el, {});
  EXPECT_THROW(turbo.run_single_source(5), InvalidArgument);
  EXPECT_THROW(turbo.run_single_source(-1), InvalidArgument);
}

TEST(TurboBc, IsolatedSourceYieldsZeroBc) {
  EdgeList el(4, true);
  el.add_edge(1, 2);
  sim::Device dev;
  TurboBC turbo(dev, el, {});
  const auto r = turbo.run_single_source(0);
  for (const bc_t v : r.bc) EXPECT_NEAR(v, 0.0, 1e-12);
  EXPECT_EQ(r.last_source.reached, 1);
}

// --------------------------------------------------------- memory behaviour

TEST(TurboBcMemory, UploadsExactlyOneFormat) {
  const auto el = gen::erdos_renyi({.n = 200, .arcs = 1200, .directed = true,
                                    .seed = 21});
  sim::Device dcsc;
  TurboBC csc(dcsc, el, {.variant = Variant::kScCsc});
  sim::Device dcooc;
  TurboBC cooc(dcooc, el, {.variant = Variant::kScCooc});
  // CSC: (n+1) * 4 + m * 4; COOC: 2m * 4.
  const auto m = static_cast<std::size_t>(csc.num_arcs());
  EXPECT_EQ(csc.graph_device_bytes(), (200 + 1) * 4 + m * 4);
  EXPECT_EQ(cooc.graph_device_bytes(), 2 * m * 4);
}

TEST(TurboBcMemory, ThrowsWhenGraphDoesNotFit) {
  const auto el = gen::erdos_renyi({.n = 1000, .arcs = 8000, .directed = true,
                                    .seed = 22});
  sim::Device dev(sim::DeviceProps::titan_xp_scaled_memory(1e-6));  // ~12 KB
  EXPECT_THROW(TurboBC(dev, el, {}), DeviceOutOfMemory);
}

TEST(TurboBcMemory, PeakReflectsTheFreeReallocTrick) {
  // The dependency triple (3 x 8 B) replaces f/f_t (2 x 8 B): the peak must
  // stay below the naive everything-resident sum.
  const auto el = gen::erdos_renyi({.n = 5000, .arcs = 20000,
                                    .directed = false, .seed = 23});
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCsc});
  const auto r = turbo.run_single_source(0);
  const std::size_t n = 5000;
  const std::size_t graph_bytes = turbo.graph_device_bytes();
  // All per-vertex arrays are modeled at the paper's 4-byte width:
  // everything-resident would hold S + sigma + f + f_t + delta triple + bc
  // = 8 x 4n + c; the free/realloc trick drops f/f_t before the triple.
  const std::size_t naive = graph_bytes + 8 * 4 * n + 4;
  EXPECT_LT(r.peak_device_bytes, naive);
  // And it must at least hold the dependency-stage inventory
  // (S + sigma + delta triple + bc = 6 x 4n).
  EXPECT_GE(r.peak_device_bytes, graph_bytes + 6 * 4 * n);
}

TEST(TurboBcMemory, FootprintModelOrdersTurboBelowGunrock) {
  for (vidx_t n : {1000, 100000}) {
    for (eidx_t m : {eidx_t{2} * n, eidx_t{30} * n}) {
      EXPECT_LT(turbobc_model_words(n, m), gunrock_model_words(n, m));
    }
  }
  EXPECT_EQ(turbobc_model_words(10, 100), 70u + 100u);
  EXPECT_EQ(gunrock_model_words(10, 100), 90u + 200u);
}

TEST(TurboBcMemory, FitPredicatesMatchThePaperTable4Numbers) {
  // kmer_V1r at paper scale: n = 214e6, m = 465e6.
  const vidx_t n = 214000000;
  const eidx_t m = 465000000;
  const std::uint64_t capacity = 12196ull * 1024 * 1024;
  EXPECT_TRUE(turbobc_fits(n, m, capacity));
  EXPECT_FALSE(gunrock_fits(n, m, capacity));
}

// ------------------------------------------------------ variant selection

TEST(VariantSelection, IrregularGraphsGetVeCsc) {
  EXPECT_EQ(select_variant(gen::mycielski(10)), Variant::kVeCsc);
  EXPECT_EQ(select_variant(gen::kronecker({.scale = 11, .edge_factor = 40,
                                           .seed = 1})),
            Variant::kVeCsc);
}

TEST(VariantSelection, HubSkewedRegularGraphsGetScCooc) {
  const auto mawi = gen::traffic_trace({.n = 8000, .hubs = 10, .decay = 0.45,
                                        .seed = 2});
  EXPECT_EQ(select_variant(mawi), Variant::kScCooc);
}

TEST(VariantSelection, PlainRegularGraphsGetScCsc) {
  EXPECT_EQ(select_variant(gen::triangulated_grid(40, 40)), Variant::kScCsc);
  EXPECT_EQ(select_variant(gen::small_world({.n = 2000, .k = 10,
                                             .rewire_p = 0.1, .seed = 3})),
            Variant::kScCsc);
}

// ---------------------------------------------------------- timing sanity

TEST(TurboBcTiming, DeviceSecondsArePositiveAndDeterministic) {
  const auto el = gen::mycielski(8);
  double t1, t2;
  {
    sim::Device dev;
    TurboBC turbo(dev, el, {.variant = Variant::kVeCsc});
    t1 = turbo.run_single_source(0).device_seconds;
  }
  {
    sim::Device dev;
    TurboBC turbo(dev, el, {.variant = Variant::kVeCsc});
    t2 = turbo.run_single_source(0).device_seconds;
  }
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(TurboBcTiming, DeeperGraphsPayMoreLaunchOverhead) {
  // Same vertex/arc counts, different depth: the deep chain needs ~n levels.
  EdgeList chain(512, true);
  for (vidx_t i = 0; i + 1 < 512; ++i) chain.add_edge(i, i + 1);
  chain.symmetrize();
  const auto shallow = gen::mycielski(9);  // depth 3, far more edges

  sim::Device d1;
  TurboBC t1(d1, chain, {.variant = Variant::kScCsc});
  const double chain_time = t1.run_single_source(0).device_seconds;

  sim::Device d2;
  TurboBC t2(d2, shallow, {.variant = Variant::kScCsc});
  const double myc_time = t2.run_single_source(0).device_seconds;

  EXPECT_GT(chain_time, myc_time);
}

}  // namespace
}  // namespace turbobc::bc
