#include <gtest/gtest.h>

#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "core/turbobfs.hpp"
#include "generators/generators.hpp"
#include "graph/bfs_probe.hpp"

namespace turbobc::bc {
namespace {

using graph::EdgeList;

class TurboBfsVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(TurboBfsVariants, DepthsMatchReferenceBfs) {
  for (const bool directed : {true, false}) {
    const auto el = gen::erdos_renyi({.n = 150, .arcs = 700,
                                      .directed = directed, .seed = 3});
    sim::Device dev;
    TurboBfs bfs(dev, el, GetParam());
    const auto r = bfs.run(2);
    const auto probe =
        graph::bfs_reference(graph::CscGraph::from_edges(el), 2);
    EXPECT_EQ(r.depth, probe.depth);
    EXPECT_EQ(r.height, probe.height);
    EXPECT_EQ(r.reached, probe.reached);
  }
}

TEST_P(TurboBfsVariants, SigmaMatchesBrandesPathCounts) {
  const auto el = gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 4});
  sim::Device dev;
  TurboBfs bfs(dev, el, GetParam());
  const auto r = bfs.run(0);
  const auto golden = baseline::brandes_sigma(el, 0);
  ASSERT_EQ(r.sigma.size(), golden.size());
  for (std::size_t v = 0; v < golden.size(); ++v) {
    EXPECT_DOUBLE_EQ(r.sigma[v], golden[v]) << v;
  }
}

TEST_P(TurboBfsVariants, DisconnectedVerticesAreMinusOne) {
  EdgeList el(6, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.symmetrize();
  sim::Device dev;
  TurboBfs bfs(dev, el, GetParam());
  const auto r = bfs.run(0);
  EXPECT_EQ(r.reached, 3);
  EXPECT_EQ(r.depth[4], kInvalidVertex);
  EXPECT_DOUBLE_EQ(r.sigma[4], 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TurboBfsVariants,
                         ::testing::Values(Variant::kScCooc, Variant::kScCsc,
                                           Variant::kVeCsc),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(TurboBfs, SourceDepthIsZeroAndSigmaOne) {
  const auto el = gen::mycielski(7);
  sim::Device dev;
  TurboBfs bfs(dev, el, Variant::kVeCsc);
  const auto r = bfs.run(5);
  EXPECT_EQ(r.depth[5], 0);
  EXPECT_DOUBLE_EQ(r.sigma[5], 1.0);
}

TEST(TurboBfs, ChargesDeviceTimeAndMemory) {
  const auto el = gen::small_world({.n = 1000, .k = 6, .rewire_p = 0.1,
                                    .seed = 5});
  sim::Device dev;
  TurboBfs bfs(dev, el, Variant::kScCsc);
  const auto r = bfs.run(0);
  EXPECT_GT(r.device_seconds, 0.0);
  // Graph + S + sigma + f + f_t at 4-byte widths.
  EXPECT_GE(r.peak_device_bytes, 4u * 4u * 1000u);
}

TEST(TurboBfs, RejectsBadInput) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  sim::Device dev;
  TurboBfs bfs(dev, el, Variant::kScCsc);
  EXPECT_THROW(bfs.run(3), InvalidArgument);
  EdgeList empty(0, true);
  EXPECT_THROW(TurboBfs(dev, empty, Variant::kScCsc), InvalidArgument);
}

TEST(TurboBfs, RepeatedRunsAreIndependent) {
  const auto el = gen::erdos_renyi({.n = 100, .arcs = 400, .directed = true,
                                    .seed = 6});
  sim::Device dev;
  TurboBfs bfs(dev, el, Variant::kScCsc);
  const auto a = bfs.run(0);
  const auto b = bfs.run(1);
  const auto c = bfs.run(0);
  EXPECT_EQ(a.depth, c.depth);
  EXPECT_NE(a.depth, b.depth);
}

}  // namespace
}  // namespace turbobc::bc
