// Tests for the beyond-the-paper extensions: edge betweenness, approximate
// BC by source sampling, and empirical variant auto-tuning.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "core/autotune.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"

namespace turbobc::bc {
namespace {

using graph::EdgeList;

void expect_vectors_equal(const std::vector<bc_t>& got,
                          const std::vector<bc_t>& want,
                          const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(std::abs(want[i]), 1.0);
    EXPECT_NEAR(got[i], want[i], 1e-9 * scale) << what << " index " << i;
  }
}

// ------------------------------------------------------------- edge BC

class EdgeBcVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(EdgeBcVariants, SingleSourceMatchesBrandesEdgeDelta) {
  for (const bool directed : {true, false}) {
    const auto el = gen::erdos_renyi({.n = 70, .arcs = 350,
                                      .directed = directed, .seed = 11});
    sim::Device dev;
    TurboBC turbo(dev, el, {.variant = GetParam(), .edge_bc = true});
    const auto r = turbo.run_single_source(1);
    expect_vectors_equal(r.edge_bc, baseline::brandes_edge_delta(el, 1),
                         std::string("edge delta directed=") +
                             (directed ? "1" : "0"));
    // Vertex BC must be unaffected by the extension.
    expect_vectors_equal(r.bc, baseline::brandes_delta(el, 1), "vertex bc");
  }
}

TEST_P(EdgeBcVariants, ExactMatchesBrandesEdgeBc) {
  const auto el = gen::mycielski(6);
  sim::Device dev;
  dev.set_keep_launch_records(false);
  TurboBC turbo(dev, el, {.variant = GetParam(), .edge_bc = true});
  const auto r = turbo.run_exact();
  expect_vectors_equal(r.edge_bc, baseline::brandes_edge_bc(el),
                       "exact edge bc");
}

INSTANTIATE_TEST_SUITE_P(AllVariants, EdgeBcVariants,
                         ::testing::Values(Variant::kScCooc, Variant::kScCsc,
                                           Variant::kVeCsc),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(EdgeBc, PathGraphClosedForm) {
  // Path 0-1-2-3 (undirected): edge {i,i+1} carries (i+1)*(n-1-i) pairs.
  // Per-arc halved values: arcs of edge {0,1} sum to 3, {1,2} to 4, {2,3}
  // to 3.
  EdgeList el(4, true);
  for (vidx_t i = 0; i + 1 < 4; ++i) el.add_edge(i, i + 1);
  el.symmetrize();
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCsc, .edge_bc = true});
  const auto r = turbo.run_exact();
  // Canonical arcs: (0,1),(1,0),(1,2),(2,1),(2,3),(3,2).
  EXPECT_NEAR(r.edge_bc[0] + r.edge_bc[1], 3.0, 1e-12);
  EXPECT_NEAR(r.edge_bc[2] + r.edge_bc[3], 4.0, 1e-12);
  EXPECT_NEAR(r.edge_bc[4] + r.edge_bc[5], 3.0, 1e-12);
}

TEST(EdgeBc, DirectedChain) {
  // 0 -> 1 -> 2: arc (0,1) carries pairs (0,1),(0,2); arc (1,2) carries
  // (0,2),(1,2).
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCooc, .edge_bc = true});
  const auto r = turbo.run_exact();
  EXPECT_NEAR(r.edge_bc[0], 2.0, 1e-12);
  EXPECT_NEAR(r.edge_bc[1], 2.0, 1e-12);
}

TEST(EdgeBc, DisabledByDefault) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  sim::Device dev;
  TurboBC turbo(dev, el, {});
  EXPECT_TRUE(turbo.run_single_source(0).edge_bc.empty());
}

TEST(EdgeBc, RaisesFootprintByOneEdgeArray) {
  const auto el = gen::erdos_renyi({.n = 500, .arcs = 5000, .directed = false,
                                    .seed = 12});
  std::size_t base, with_edges;
  {
    sim::Device dev;
    TurboBC turbo(dev, el, {.variant = Variant::kScCsc});
    base = turbo.run_single_source(0).peak_device_bytes;
  }
  {
    sim::Device dev;
    TurboBC turbo(dev, el, {.variant = Variant::kScCsc, .edge_bc = true});
    with_edges = turbo.run_single_source(0).peak_device_bytes;
  }
  const auto m = static_cast<std::size_t>(
      graph::CscGraph::from_edges(el).num_arcs());
  EXPECT_EQ(with_edges - base, 4 * m);  // one more m-word array
}

// ------------------------------------------------------- approximate BC

TEST(ApproxBc, FullSampleEqualsExact) {
  const auto el = gen::erdos_renyi({.n = 60, .arcs = 300, .directed = false,
                                    .seed = 13});
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCsc});
  const auto exact = turbo.run_exact();
  // Sampling every vertex must reproduce exact BC (scale factor 1).
  const auto approx = turbo.run_approximate({.num_sources = 60, .seed = 1});
  expect_vectors_equal(approx.bc, exact.bc, "full-sample approx");
}

TEST(ApproxBc, EstimateConvergesWithSampleSize) {
  const auto el = gen::small_world({.n = 600, .k = 8, .rewire_p = 0.1,
                                    .seed = 14});
  const auto golden = baseline::brandes_bc(el);
  const double golden_norm =
      std::accumulate(golden.begin(), golden.end(), 0.0);

  auto mean_abs_error = [&](vidx_t k) {
    sim::Device dev;
    dev.set_keep_launch_records(false);
    TurboBC turbo(dev, el, {.variant = Variant::kScCsc});
    const auto r = turbo.run_approximate({.num_sources = k, .seed = 7});
    double err = 0.0;
    for (std::size_t v = 0; v < golden.size(); ++v) {
      err += std::abs(r.bc[v] - golden[v]);
    }
    return err / golden_norm;
  };

  const double coarse = mean_abs_error(15);
  const double fine = mean_abs_error(240);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 0.35);  // 40% sample: decent estimate
}

TEST(ApproxBc, SamplesAreDeterministicPerSeed) {
  const auto el = gen::erdos_renyi({.n = 80, .arcs = 400, .directed = true,
                                    .seed = 15});
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCsc});
  const auto a = turbo.run_approximate({.num_sources = 10, .seed = 3});
  const auto b = turbo.run_approximate({.num_sources = 10, .seed = 3});
  const auto c = turbo.run_approximate({.num_sources = 10, .seed = 4});
  EXPECT_EQ(a.bc, b.bc);
  EXPECT_NE(a.bc, c.bc);
}

TEST(ApproxBc, ClampsSampleCountToN) {
  EdgeList el(5, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.symmetrize();
  sim::Device dev;
  TurboBC turbo(dev, el, {});
  const auto r = turbo.run_approximate({.num_sources = 50, .seed = 1});
  EXPECT_EQ(r.sources, 5);
}

TEST(ApproxBc, RejectsZeroSamples) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  sim::Device dev;
  TurboBC turbo(dev, el, {});
  EXPECT_THROW(turbo.run_approximate({.num_sources = 0, .seed = 1}),
               InvalidArgument);
}

// ------------------------------------------------------------- autotune

TEST(Autotune, PicksVeCscOnMycielski) {
  const auto el = gen::mycielski(11);
  const auto r = autotune_variant(el, el.num_vertices() - 1);
  EXPECT_EQ(r.best, Variant::kVeCsc);
  EXPECT_GT(r.seconds[static_cast<int>(Variant::kScCsc)],
            r.seconds[static_cast<int>(Variant::kVeCsc)]);
}

TEST(Autotune, PicksScCoocOnHubTrace) {
  const auto el = gen::traffic_trace({.n = 15000, .hubs = 10, .decay = 0.45,
                                      .seed = 16});
  const auto r = autotune_variant(el, 0);
  EXPECT_EQ(r.best, Variant::kScCooc);
}

TEST(Autotune, AgreesWithMeasuredBestOnEveryClass) {
  // The autotune winner must truly be the min of the three probes.
  const auto el = gen::kronecker({.scale = 11, .edge_factor = 40, .seed = 17});
  const auto r = autotune_variant(el, 0);
  for (int v = 0; v < 3; ++v) {
    EXPECT_LE(r.seconds[static_cast<int>(r.best)], r.seconds[v]);
    EXPECT_GT(r.seconds[v], 0.0);
  }
}

}  // namespace
}  // namespace turbobc::bc
