// MS-BFS pinning suite: the packed-mask batched engine must be BIT-identical
// to the per-source TurboBC pipeline (kScCSC, the variant whose column fold
// order the batched SpMM kernels reproduce) on every generator family, in
// every advance mode, and through the distributed partitioned exchange.
//
// These are equality tests, not tolerance tests — the fixed fold order is the
// contract that lets the oracle's msbfs_agreement invariant compare doubles
// with ==.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/turbobc.hpp"
#include "core/turbobc_batched.hpp"
#include "dist/dist_turbobc.hpp"
#include "gpusim/topology.hpp"
#include "qa/fuzz_case.hpp"

namespace turbobc::bc {
namespace {

void expect_bits_equal(const std::vector<bc_t>& got,
                       const std::vector<bc_t>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Exact: the MS-BFS fold skips only exact-zero terms, so every surviving
    // float add happens in the per-source engine's order.
    ASSERT_EQ(got[i], want[i]) << what << " vertex " << i;
  }
}

/// Up to `want` sources spread across [0, n) — same shape the QA oracle uses.
std::vector<vidx_t> spread_sources(vidx_t n, vidx_t want) {
  const vidx_t count = std::min(n, want);
  std::vector<vidx_t> sources;
  sources.reserve(static_cast<std::size_t>(count));
  for (vidx_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vidx_t>(
        (static_cast<std::uint64_t>(i) * n) / count));
  }
  return sources;
}

class MsBfsFamilies : public ::testing::TestWithParam<qa::Family> {};

TEST_P(MsBfsFamilies, PackedMasksMatchPerSourceBitwise) {
  qa::FuzzCase c;
  c.family = GetParam();
  c.seed = 7;
  c.size_class = 1;
  const auto el = qa::build_graph(c);
  if (el.num_vertices() == 0) GTEST_SKIP() << "degenerate family draw";
  const auto sources = spread_sources(el.num_vertices(), 64);

  sim::Device d_ref;
  TurboBC plain(d_ref, el, {.variant = Variant::kScCsc});
  const auto ref = plain.run_sources(sources);

  for (const Advance adv : {Advance::kPush, Advance::kPull, Advance::kAuto}) {
    sim::Device dev;
    TurboBCBatched batched(dev, el, {.batch_size = 64, .advance = adv});
    const auto got = batched.run_sources(sources);
    expect_bits_equal(got.bc, ref.bc,
                      std::string("family ") +
                          std::string(qa::to_string(GetParam())) + " advance " +
                          std::string(to_string(adv)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, MsBfsFamilies,
    ::testing::ValuesIn(qa::kGeneratorFamilies),
    [](const auto& info) { return std::string(qa::to_string(info.param)); });

TEST(MsBfsDist, PartitionedMaskExchangeMatchesSingleDevice) {
  for (const qa::Family family :
       {qa::Family::kKronecker, qa::Family::kLocalDigraph, qa::Family::kGrid}) {
    qa::FuzzCase c;
    c.family = family;
    c.seed = 11;
    c.size_class = 1;
    const auto el = qa::build_graph(c);
    const auto sources = spread_sources(el.num_vertices(), 24);

    sim::Device dev;
    TurboBCBatched single(dev, el, {.batch_size = 8});
    const auto want = single.run_sources(sources);

    sim::Topology topo(sim::TopologyProps::quad_titan_xp());
    dist::DistTurboBC engine(topo, el,
                             {.strategy = dist::Strategy::kPartition,
                              .batch_size = 8});
    const auto got = engine.run_sources(sources);
    EXPECT_EQ(got.strategy_used, dist::Strategy::kPartition);
    EXPECT_GT(got.comm_bytes, 0u);
    expect_bits_equal(got.bc, want.bc,
                      std::string("dist family ") +
                          std::string(qa::to_string(family)));
  }
}

TEST(MsBfsDist, RejectsNonPushAdvance) {
  qa::FuzzCase c;
  c.family = qa::Family::kGrid;
  c.seed = 3;
  const auto el = qa::build_graph(c);
  sim::Topology topo(sim::TopologyProps::quad_titan_xp());
  EXPECT_THROW(dist::DistTurboBC(topo, el,
                                 {.strategy = dist::Strategy::kPartition,
                                  .advance = Advance::kPull,
                                  .batch_size = 8}),
               InvalidArgument);
}

}  // namespace
}  // namespace turbobc::bc
