#include <gtest/gtest.h>

#include <cmath>

#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "core/turbobc_batched.hpp"
#include "generators/generators.hpp"

namespace turbobc::bc {
namespace {

using graph::EdgeList;

void expect_bc_equal(const std::vector<bc_t>& got,
                     const std::vector<bc_t>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(std::abs(want[i]), 1.0);
    EXPECT_NEAR(got[i], want[i], 1e-9 * scale) << what << " vertex " << i;
  }
}

class BatchSizes : public ::testing::TestWithParam<vidx_t> {};

TEST_P(BatchSizes, ExactMatchesBrandesUndirected) {
  const auto el = gen::mycielski(6);
  sim::Device dev;
  dev.set_keep_launch_records(false);
  TurboBCBatched turbo(dev, el, {.batch_size = GetParam()});
  expect_bc_equal(turbo.run_exact().bc, baseline::brandes_bc(el),
                  "batched exact undirected");
}

TEST_P(BatchSizes, ExactMatchesBrandesDirected) {
  const auto el = gen::erdos_renyi({.n = 50, .arcs = 220, .directed = true,
                                    .seed = 61});
  sim::Device dev;
  dev.set_keep_launch_records(false);
  TurboBCBatched turbo(dev, el, {.batch_size = GetParam()});
  expect_bc_equal(turbo.run_exact().bc, baseline::brandes_bc(el),
                  "batched exact directed");
}

TEST_P(BatchSizes, PartialLastBatchIsHandled) {
  // n not divisible by batch size: the final (short) batch must be correct.
  const auto el = gen::small_world({.n = 45, .k = 4, .rewire_p = 0.2,
                                    .seed = 62});
  sim::Device dev;
  TurboBCBatched turbo(dev, el, {.batch_size = GetParam()});
  expect_bc_equal(turbo.run_exact().bc, baseline::brandes_bc(el),
                  "partial batch");
}

INSTANTIATE_TEST_SUITE_P(Ks, BatchSizes,
                         ::testing::Values(1, 2, 3, 8, 17, 32, 64),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(Batched, SelectedSourcesMatchUnbatchedRun) {
  const auto el = gen::kronecker({.scale = 7, .edge_factor = 8, .seed = 63});
  const std::vector<vidx_t> sources = {0, 5, 9, 20, 33};

  sim::Device d1;
  TurboBCBatched batched(d1, el, {.batch_size = 4});
  const auto rb = batched.run_sources(sources);

  sim::Device d2;
  TurboBC plain(d2, el, {.variant = Variant::kScCsc});
  const auto rp = plain.run_sources(sources);

  expect_bc_equal(rb.bc, rp.bc, "batched vs unbatched");
}

TEST(Batched, HandlesDisconnectedSourcesWithDifferentHeights) {
  // Two components with very different depths inside one batch.
  EdgeList el(12, true);
  for (vidx_t i = 0; i + 1 < 8; ++i) el.add_edge(i, i + 1);  // chain, d=7
  el.add_edge(8, 9);                                         // pair
  el.add_edge(10, 11);
  el.symmetrize();
  sim::Device dev;
  TurboBCBatched turbo(dev, el, {.batch_size = 12});
  expect_bc_equal(turbo.run_exact().bc, baseline::brandes_bc(el),
                  "mixed heights");
}

TEST(Batched, BatchingAmortizesLaunchesOnDeepGraphs) {
  // The launch count per source must drop ~k-fold on deep graphs.
  const auto el = gen::road_network({.grid_rows = 5, .grid_cols = 5,
                                     .keep_p = 0.8, .subdivisions = 10,
                                     .seed = 64});
  double t1, t8;
  {
    sim::Device dev;
    dev.set_keep_launch_records(false);
    TurboBCBatched turbo(dev, el, {.batch_size = 1});
    t1 = turbo.run_exact().device_seconds;
  }
  {
    sim::Device dev;
    dev.set_keep_launch_records(false);
    TurboBCBatched turbo(dev, el, {.batch_size = 8});
    t8 = turbo.run_exact().device_seconds;
  }
  EXPECT_LT(t8, t1 / 3.0);  // at least 3x from 8-way batching
}

TEST(Batched, PeakMemoryScalesWithBatchSize) {
  const auto el = gen::small_world({.n = 2000, .k = 6, .rewire_p = 0.1,
                                    .seed = 65});
  std::size_t p1, p8;
  {
    sim::Device dev;
    TurboBCBatched turbo(dev, el, {.batch_size = 1});
    p1 = turbo.run_sources({0}).peak_device_bytes;
  }
  {
    sim::Device dev;
    TurboBCBatched turbo(dev, el, {.batch_size = 8});
    p8 = turbo.run_sources({0, 1, 2, 3, 4, 5, 6, 7}).peak_device_bytes;
  }
  EXPECT_GT(p8, 4 * (p1 - 8 * 2000 * 4) / 2);  // state grows ~k-fold
  EXPECT_GT(p8, p1);
}

TEST(Batched, RejectsBadConfiguration) {
  const auto el = gen::mycielski(5);
  sim::Device dev;
  EXPECT_THROW(TurboBCBatched(dev, el, {.batch_size = 0}), InvalidArgument);
  EXPECT_THROW(TurboBCBatched(dev, el, {.batch_size = 65}), InvalidArgument);
  TurboBCBatched ok(dev, el, {.batch_size = 4});
  EXPECT_THROW(ok.run_sources({99}), InvalidArgument);
}

}  // namespace
}  // namespace turbobc::bc
