// Per-family classification pinning (paper Table 1-3 taxonomy).
//
// Every generator family gets its scf classification (regular vs
// irregular) and the variant bc::select_variant derives from it pinned as
// an explicit expectation. This is the contract the autotuner's heuristics
// feed on: a drift in scf_index, is_irregular, or the in-degree-skew COOC
// rule shows up here as a named family flipping its verdict, not as a
// silent perf regression in some downstream bench. The scf ranges are
// deliberately loose (the pinned facts are the verdicts); measured values
// at these shapes are recorded in the comments.
#include <gtest/gtest.h>

#include "core/variant.hpp"
#include "generators/generators.hpp"
#include "graph/mtx_io.hpp"
#include "graph/stats.hpp"

namespace turbobc::graph {
namespace {

void expect_family(const EdgeList& el, bool want_irregular,
                   bc::Variant want_variant, double scf_lo, double scf_hi) {
  const double scf = scf_index(el);
  EXPECT_GE(scf, scf_lo);
  EXPECT_LE(scf, scf_hi);
  EXPECT_EQ(is_irregular(el), want_irregular);
  EXPECT_EQ(bc::select_variant(el), want_variant);
}

// Scale-free families: scf well above the irregularity threshold, veCSC.

TEST(FamilyClassification, MycielskiIsIrregularVeCsc) {
  // scf ~ 74.8 at order 10.
  expect_family(gen::mycielski(10), true, bc::Variant::kVeCsc, 40.0, 150.0);
}

TEST(FamilyClassification, KroneckerIsIrregularVeCsc) {
  // scf ~ 174.8 at scale 13, edge factor 16.
  expect_family(gen::kronecker({.scale = 13, .edge_factor = 16, .seed = 5}),
                true, bc::Variant::kVeCsc, 80.0, 400.0);
}

// Regular mesh-like families: scf near the mean degree, scCSC.

TEST(FamilyClassification, TriangulatedGridIsRegularScCsc) {
  // scf ~ 5.9 on 60x60.
  expect_family(gen::triangulated_grid(60, 60), false, bc::Variant::kScCsc,
                3.0, 9.0);
}

TEST(FamilyClassification, MarkovLatticeIsRegularScCsc) {
  // scf ~ 6.1 at the mark3j-style defaults.
  expect_family(gen::markov_lattice({}), false, bc::Variant::kScCsc, 3.0,
                9.0);
}

TEST(FamilyClassification, RoadIsRegularScCsc) {
  // scf ~ 2.1: subdivided mesh edges are near-paths (the paper reports
  // scf = 2 for road networks).
  expect_family(gen::road_network({.grid_rows = 20, .grid_cols = 20}), false,
                bc::Variant::kScCsc, 1.8, 3.0);
}

TEST(FamilyClassification, SmallWorldIsRegularScCsc) {
  // scf ~ 10.1 (ring degree k dominates).
  expect_family(gen::small_world({.n = 20000}), false, bc::Variant::kScCsc,
                6.0, 14.0);
}

TEST(FamilyClassification, ErdosRenyiIsRegularScCsc) {
  // scf ~ 6.0 at mean degree 6: Poisson tails are not scale-free.
  expect_family(gen::erdos_renyi(
                    {.n = 20000, .arcs = 120000, .directed = true, .seed = 5}),
                false, bc::Variant::kScCsc, 3.0, 10.0);
}

TEST(FamilyClassification, KmerIsRegularScCsc) {
  // scf ~ 2.0: unitig chains are paths (paper Table 2 kmer rows).
  expect_family(gen::kmer_like({}), false, bc::Variant::kScCsc, 1.8, 3.0);
}

TEST(FamilyClassification, WebCrawlIsRegularScCsc) {
  // scf ~ 21.0 — high but under the irregularity threshold, and the
  // locality window keeps the max in-degree under the 50x-mean COOC rule.
  expect_family(gen::web_crawl({}), false, bc::Variant::kScCsc, 10.0, 35.0);
}

// Hub-dominated families: "regular" by scf, but the max in-degree exceeds
// 50x the mean, so select_variant routes them to the edge-parallel COOC
// kernel (a scalar column scan would serialize a warp on the hub column).

TEST(FamilyClassification, PreferentialUndirectedIsHubbyScCooc) {
  // scf ~ 24.8, max in-degree >> 50x mean.
  expect_family(
      gen::preferential_attachment({.n = 20000, .m_attach = 8, .seed = 3}),
      false, bc::Variant::kScCooc, 12.0, 40.0);
}

TEST(FamilyClassification, PreferentialDirectedIsHubbyScCooc) {
  // scf ~ 4.0: the new->old arc direction concentrates in-degree on the
  // oldest vertices. This family is the reason select_variant reads
  // in-degree stats — its OUT-degree is uniform (m_attach per vertex).
  expect_family(gen::preferential_attachment({.n = 20000, .m_attach = 8,
                                              .directed = true, .seed = 3}),
                false, bc::Variant::kScCooc, 2.0, 8.0);
}

TEST(FamilyClassification, SuperhubSocialIsHubbyScCooc) {
  // scf ~ 3.4; celebrities soak up ~30% of all arcs.
  expect_family(gen::superhub_social({.n = 20000}), false,
                bc::Variant::kScCooc, 2.0, 6.0);
}

TEST(FamilyClassification, TrafficTraceIsHubbyScCooc) {
  // scf ~ 3.0; the mawi-style backbone hubs dominate (paper reports scf = 2
  // for the mawi traces).
  expect_family(gen::traffic_trace({}), false, bc::Variant::kScCooc, 2.0,
                6.0);
}

// Vendored fixture INSIDE the 50x crossover band: a mid-band in-degree skew
// (max/mean ~23.5x — between the regular meshes at ~1-3x and mawi_tail at
// ~1016x) must stay on the scCSC side of the COOC rule. This pins the
// boundary from below the same way mawi_tail pins it from above;
// bench_ablation_scf re-checks the verdict empirically.
TEST(FamilyClassification, MidskewFixtureStaysScCsc) {
  EdgeList el =
      read_matrix_market_file(TURBOBC_FIXTURES_DIR "/midskew.mtx");
  el.canonicalize();
  const auto stats = in_degree_stats(el);
  const double ratio = static_cast<double>(stats.max) / stats.mean;
  EXPECT_GE(ratio, 20.0);
  EXPECT_LE(ratio, 50.0);  // inside the band, below the COOC crossover
  // scf ~ 4.4: one moderate hub cannot make a ring lattice scale-free.
  expect_family(el, false, bc::Variant::kScCsc, 3.0, 7.0);
}

}  // namespace
}  // namespace turbobc::graph
