#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "generators/random_graphs.hpp"
#include "graph/mtx_io.hpp"

namespace turbobc::graph {
namespace {

TEST(MtxIo, ReadsPatternGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2\n"
      "3 1\n");
  const EdgeList el = read_matrix_market(in);
  EXPECT_EQ(el.num_vertices(), 3);
  EXPECT_EQ(el.num_arcs(), 2);
  EXPECT_TRUE(el.directed());
  EXPECT_EQ(el.edges()[0], (Edge{0, 1}));  // 1-based -> 0-based
  EXPECT_EQ(el.edges()[1], (Edge{2, 0}));
}

TEST(MtxIo, ReadsSymmetricAndExpands) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const EdgeList el = read_matrix_market(in);
  EXPECT_FALSE(el.directed());
  EXPECT_EQ(el.num_arcs(), 4);  // both arc directions
}

TEST(MtxIo, DiscardsRealWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 2 3.75\n");
  const EdgeList el = read_matrix_market(in);
  EXPECT_EQ(el.num_arcs(), 1);
}

TEST(MtxIo, DiscardsIntegerWeights) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 1 5\n");
  EXPECT_EQ(read_matrix_market(in).num_arcs(), 1);
}

TEST(MtxIo, AcceptsCrlfLineEndings) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\r\n"
      "% dos file\r\n"
      "3 3 2\r\n"
      "1 2\r\n"
      "3 1\r\n");
  const EdgeList el = read_matrix_market(in);
  EXPECT_EQ(el.num_vertices(), 3);
  EXPECT_EQ(el.num_arcs(), 2);
}

TEST(MtxIo, AcceptsBlankAndCommentLinesAmongEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "\n"
      "1 2\n"
      "% interleaved comment\n"
      "3 1\n");
  EXPECT_EQ(read_matrix_market(in).num_arcs(), 2);
}

TEST(MtxIo, RejectsNonSquare) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 3 1\n"
      "1 2\n");
  EXPECT_THROW(read_matrix_market(in), InvalidArgument);
}

TEST(MtxIo, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW(read_matrix_market(in), InvalidArgument);
}

TEST(MtxIo, RejectsUnsupportedField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "2 2 0\n");
  EXPECT_THROW(read_matrix_market(in), InvalidArgument);
}

TEST(MtxIo, RejectsOutOfRangeEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 5\n");
  EXPECT_THROW(read_matrix_market(in), InvalidArgument);
}

TEST(MtxIo, RejectsTruncatedStream) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n");
  EXPECT_THROW(read_matrix_market(in), InvalidArgument);
}

// Hardening paths: each rejection throws ParseError with the offending
// 1-based line number (ParseError derives from InvalidArgument, so the
// generic expectations above still hold too).

ParseError capture_parse_error(const std::string& text) {
  std::istringstream in(text);
  try {
    read_matrix_market(in);
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError for: " << text;
  return ParseError("unreached");
}

TEST(MtxIoHardening, RejectsNegativeDimensionsWithLineNumber) {
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "-3 -3 1\n"
      "1 1\n");
  EXPECT_EQ(e.line_number(), 2u);
  EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos);
}

TEST(MtxIoHardening, RejectsDimensionOverflowingVertexIndex) {
  // 2^31 does not fit the 32-bit vidx_t; before hardening this silently
  // truncated in a static_cast.
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2147483648 2147483648 0\n");
  EXPECT_EQ(e.line_number(), 2u);
  EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos);
}

TEST(MtxIoHardening, RejectsDimensionOverflowingLongLong) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "99999999999999999999999999 99999999999999999999999999 0\n");
  EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(MtxIoHardening, RejectsMalformedSizeLine) {
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "three three 0\n");
  EXPECT_EQ(e.line_number(), 2u);
}

TEST(MtxIoHardening, RejectsTruncatedEntryLine) {
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 2\n"
      "3\n");
  EXPECT_EQ(e.line_number(), 4u);
}

TEST(MtxIoHardening, RejectsEntryMissingRequiredValue) {
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 2\n");
  EXPECT_EQ(e.line_number(), 3u);
  EXPECT_NE(std::string(e.what()).find("value"), std::string::npos);
}

TEST(MtxIoHardening, RejectsZeroIndexedEntry) {
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "0 1\n");
  EXPECT_EQ(e.line_number(), 3u);
}

TEST(MtxIoHardening, OutOfRangeEntryReportsItsLine) {
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment shifts the entry lines down\n"
      "2 2 2\n"
      "1 2\n"
      "1 5\n");
  EXPECT_EQ(e.line_number(), 5u);
}

TEST(MtxIoHardening, HeaderErrorsReportLineOne) {
  const ParseError e = capture_parse_error(
      "%%MatrixMarket matrix coordinate complex general\n"
      "2 2 0\n");
  EXPECT_EQ(e.line_number(), 1u);
}

TEST(MtxIoHardening, EmptyStreamReportsNoLine) {
  std::istringstream in("");
  try {
    read_matrix_market(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line_number(), 0u);
  }
}

TEST(MtxIo, RoundTripsDirectedGraph) {
  const auto el = gen::erdos_renyi({.n = 40, .arcs = 200, .directed = true,
                                    .seed = 9});
  std::ostringstream out;
  write_matrix_market(out, el);
  std::istringstream in(out.str());
  const EdgeList back = read_matrix_market(in);
  EXPECT_EQ(back.num_vertices(), el.num_vertices());
  EXPECT_EQ(back.edges(), el.edges());
  EXPECT_EQ(back.directed(), el.directed());
}

TEST(MtxIo, RoundTripsUndirectedGraph) {
  const auto el = gen::erdos_renyi({.n = 30, .arcs = 120, .directed = false,
                                    .seed = 10});
  std::ostringstream out;
  write_matrix_market(out, el);
  std::istringstream in(out.str());
  const EdgeList back = read_matrix_market(in);
  EXPECT_EQ(back.num_vertices(), el.num_vertices());
  EXPECT_EQ(back.edges(), el.edges());
  EXPECT_FALSE(back.directed());
}

TEST(MtxIo, FileRoundTrip) {
  const auto el = gen::erdos_renyi({.n = 10, .arcs = 30, .directed = true,
                                    .seed = 11});
  const std::string path = ::testing::TempDir() + "/turbobc_io_test.mtx";
  write_matrix_market_file(path, el);
  const EdgeList back = read_matrix_market_file(path);
  EXPECT_EQ(back.edges(), el.edges());
}

TEST(MtxIo, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/never.mtx"),
               InvalidArgument);
}

}  // namespace
}  // namespace turbobc::graph
