#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "generators/generators.hpp"
#include "graph/reorder.hpp"

namespace turbobc::graph {
namespace {

TEST(Reorder, RcmIsAPermutation) {
  const auto g = gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 91});
  const auto order = rcm_order(g);
  std::vector<vidx_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(v)], v);
  }
}

TEST(Reorder, RcmShrinksBandwidthOnMeshes) {
  // Start from a scrambled mesh; RCM must undo most of the damage.
  const auto mesh = gen::triangulated_grid(30, 30);
  const auto scrambled = apply_order(mesh, random_order(mesh.num_vertices(), 7));
  const auto rcm = apply_order(scrambled, rcm_order(scrambled));
  EXPECT_LT(bandwidth(rcm), bandwidth(scrambled) / 4);
}

TEST(Reorder, RcmShrinksBandwidthOnRoads) {
  const auto road = gen::road_network({.grid_rows = 8, .grid_cols = 8,
                                       .keep_p = 0.7, .subdivisions = 8,
                                       .seed = 92});
  const auto scrambled = apply_order(road, random_order(road.num_vertices(), 8));
  const auto rcm = apply_order(scrambled, rcm_order(scrambled));
  EXPECT_LT(bandwidth(rcm), bandwidth(scrambled) / 4);
}

TEST(Reorder, HandlesDisconnectedGraphs) {
  EdgeList el(9, true);
  el.add_edge(0, 1);
  el.add_edge(3, 4);
  el.add_edge(4, 5);
  el.symmetrize();  // vertices 2, 6, 7, 8 isolated
  const auto order = rcm_order(el);
  std::vector<vidx_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (vidx_t v = 0; v < 9; ++v) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(v)], v);
  }
}

TEST(Reorder, ApplyOrderPreservesStructure) {
  const auto g = gen::erdos_renyi({.n = 60, .arcs = 250, .directed = true,
                                   .seed = 93});
  const auto order = random_order(60, 9);
  const auto relabeled = apply_order(g, order);
  EXPECT_EQ(relabeled.num_arcs(), g.num_arcs());
  EXPECT_EQ(relabeled.num_vertices(), g.num_vertices());
  // Degree multiset is invariant.
  auto d1 = g.out_degrees();
  auto d2 = relabeled.out_degrees();
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
}

TEST(Reorder, ApplyOrderRejectsNonPermutations) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  EXPECT_THROW(apply_order(el, {0, 0, 1}), InvalidArgument);
  EXPECT_THROW(apply_order(el, {0, 1}), InvalidArgument);
  EXPECT_THROW(apply_order(el, {0, 1, 5}), InvalidArgument);
}

TEST(Reorder, BcIsInvariantUnderRcm) {
  const auto g = gen::small_world({.n = 120, .k = 4, .rewire_p = 0.15,
                                   .seed = 94});
  const auto order = rcm_order(g);
  const auto relabeled = apply_order(g, order);
  const auto bc_orig = baseline::brandes_bc(g);
  const auto bc_re = baseline::brandes_bc(relabeled);
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(bc_orig[static_cast<std::size_t>(v)],
                bc_re[static_cast<std::size_t>(order[static_cast<std::size_t>(v)])],
                1e-9);
  }
}

TEST(Reorder, BandwidthOfChainIsOne) {
  EdgeList el(10, true);
  for (vidx_t i = 0; i + 1 < 10; ++i) el.add_edge(i, i + 1);
  EXPECT_EQ(bandwidth(el), 1);
  EdgeList empty(5, true);
  EXPECT_EQ(bandwidth(empty), 0);
}

}  // namespace
}  // namespace turbobc::graph
