#include <gtest/gtest.h>

#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "graph/components.hpp"
#include "graph/csr.hpp"

namespace turbobc::graph {
namespace {

EdgeList two_triangles_and_isolated() {
  // Component 0: {0,1,2} triangle; component 1: {3,4,5} triangle;
  // component 2: isolated vertex 6.
  EdgeList el(7, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.add_edge(2, 0);
  el.add_edge(3, 4);
  el.add_edge(4, 5);
  el.add_edge(5, 3);
  el.symmetrize();
  return el;
}

TEST(Components, FindsAllComponents) {
  const auto c = weakly_connected_components(two_triangles_and_isolated());
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.sizes[0], 3);
  EXPECT_EQ(c.sizes[1], 3);
  EXPECT_EQ(c.sizes[2], 1);
  EXPECT_EQ(c.component[0], c.component[2]);
  EXPECT_NE(c.component[0], c.component[3]);
  EXPECT_EQ(c.component[6], 2);
}

TEST(Components, ConnectedGraphIsOneComponent) {
  const auto g = gen::mycielski(8);
  const auto c = weakly_connected_components(g);
  EXPECT_EQ(c.count, 1);
  EXPECT_EQ(c.sizes[0], g.num_vertices());
  EXPECT_EQ(c.largest(), 0);
}

TEST(Components, DirectedWeakConnectivityIgnoresDirection) {
  // 0 -> 1 <- 2: weakly one component despite no directed path 0 -> 2.
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(2, 1);
  const auto c = weakly_connected_components(el);
  EXPECT_EQ(c.count, 1);
}

TEST(Components, LargestPicksBiggest) {
  EdgeList el(10, true);
  el.add_edge(0, 1);  // size 2
  for (vidx_t v = 2; v < 9; ++v) el.add_edge(v, v + 1);  // size 8
  el.symmetrize();
  const auto c = weakly_connected_components(el);
  EXPECT_EQ(c.count, 2);
  EXPECT_EQ(c.sizes[static_cast<std::size_t>(c.largest())], 8);
}

TEST(Components, ExtractRenumbersDensely) {
  const auto el = two_triangles_and_isolated();
  const auto c = weakly_connected_components(el);
  std::vector<vidx_t> mapping;
  const auto sub = extract_component(el, c, 1, &mapping);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_arcs(), 6);  // triangle, both arc directions
  EXPECT_EQ(mapping[3], 0);
  EXPECT_EQ(mapping[4], 1);
  EXPECT_EQ(mapping[5], 2);
  EXPECT_EQ(mapping[0], kInvalidVertex);
}

TEST(Components, ExtractIsolatedVertex) {
  const auto el = two_triangles_and_isolated();
  const auto c = weakly_connected_components(el);
  const auto sub = extract_component(el, c, 2);
  EXPECT_EQ(sub.num_vertices(), 1);
  EXPECT_EQ(sub.num_arcs(), 0);
}

TEST(Components, RejectsBadComponentId) {
  const auto el = two_triangles_and_isolated();
  const auto c = weakly_connected_components(el);
  EXPECT_THROW(extract_component(el, c, 5), InvalidArgument);
}

TEST(Components, BcOnComponentsEqualsBcOnWhole) {
  // BC is component-local: computing per component and stitching back must
  // match BC of the disconnected whole.
  const auto el = two_triangles_and_isolated();
  const auto whole = baseline::brandes_bc(el);

  const auto c = weakly_connected_components(el);
  std::vector<bc_t> stitched(7, 0.0);
  for (vidx_t id = 0; id < c.count; ++id) {
    std::vector<vidx_t> mapping;
    const auto sub = extract_component(el, c, id, &mapping);
    if (sub.num_vertices() == 0) continue;
    const auto part = baseline::brandes_bc(sub);
    for (vidx_t v = 0; v < 7; ++v) {
      if (mapping[static_cast<std::size_t>(v)] != kInvalidVertex) {
        stitched[static_cast<std::size_t>(v)] =
            part[static_cast<std::size_t>(
                mapping[static_cast<std::size_t>(v)])];
      }
    }
  }
  for (std::size_t v = 0; v < 7; ++v) {
    EXPECT_NEAR(stitched[v], whole[v], 1e-12) << v;
  }
}

TEST(Components, GiantComponentWorkflowWithTurboBC) {
  // The practical pipeline: find the giant component, run BC inside it.
  auto el = gen::erdos_renyi({.n = 300, .arcs = 350, .directed = false,
                              .seed = 33});  // sparse: many components
  const auto c = weakly_connected_components(el);
  ASSERT_GT(c.count, 1);
  const auto giant = extract_component(el, c, c.largest());
  EXPECT_GT(giant.num_vertices(), 0);

  sim::Device dev;
  bc::TurboBC turbo(dev, giant, {.variant = bc::Variant::kScCsc});
  const auto r = turbo.run_single_source(0);
  EXPECT_EQ(r.last_source.reached > 0, true);
}

}  // namespace
}  // namespace turbobc::graph
