#include <gtest/gtest.h>

#include <queue>

#include "common/error.hpp"
#include "generators/generators.hpp"
#include "graph/bfs_probe.hpp"
#include "graph/stats.hpp"

namespace turbobc::graph {
namespace {

EdgeList path_graph(vidx_t n) {
  EdgeList el(n, true);
  for (vidx_t i = 0; i + 1 < n; ++i) el.add_edge(i, i + 1);
  el.symmetrize();
  return el;
}

TEST(DegreeStats, UniformDegreeHasZeroStddev) {
  // A cycle: every vertex has degree 2.
  EdgeList el(10, true);
  for (vidx_t i = 0; i < 10; ++i) el.add_edge(i, (i + 1) % 10);
  el.symmetrize();
  const auto s = degree_stats(el);
  EXPECT_EQ(s.max, 2);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(DegreeStats, StarGraphIsMaximallySkewed) {
  EdgeList el(11, true);
  for (vidx_t i = 1; i <= 10; ++i) el.add_edge(0, i);
  el.symmetrize();
  const auto s = degree_stats(el);
  EXPECT_EQ(s.max, 10);
  EXPECT_NEAR(s.mean, 20.0 / 11.0, 1e-12);
  EXPECT_GT(s.stddev, 2.0);
}

TEST(ScfMetric, RegularLatticeScoresNearMeanDegree) {
  const auto grid = gen::triangulated_grid(30, 30);
  EXPECT_LT(scf_index(grid), 10.0);
  EXPECT_GT(scf_index(grid), 2.0);
  EXPECT_FALSE(is_irregular(grid));
}

TEST(ScfMetric, StarScoresNearTwo) {
  // The paper reports scf = 2 for the hub-dominated mawi traces and road
  // paths; a pure star is the extreme case of that family.
  EdgeList el(101, true);
  for (vidx_t i = 1; i <= 100; ++i) el.add_edge(0, i);
  el.symmetrize();
  EXPECT_NEAR(scf_index(el), 2.0, 0.2);
  EXPECT_FALSE(is_irregular(el));
}

TEST(ScfMetric, PathScoresNearTwo) {
  const auto el = path_graph(200);
  EXPECT_NEAR(scf_index(el), 2.0, 0.3);
}

TEST(ScfMetric, MycielskiScoresHigh) {
  const auto m = gen::mycielski(9);
  EXPECT_GT(scf_index(m), kIrregularScfThreshold);
  EXPECT_TRUE(is_irregular(m));
}

TEST(ScfMetric, KroneckerScoresHigh) {
  const auto k = gen::kronecker({.scale = 10, .edge_factor = 40, .seed = 3});
  EXPECT_TRUE(is_irregular(k));
}

TEST(ScfMetric, GrowsWithMycielskiOrder) {
  // The paper's scf column grows monotonically across mycielski15..19; the
  // index must preserve that ordering.
  double prev = 0.0;
  for (int k = 7; k <= 11; ++k) {
    const double s = scf_index(gen::mycielski(k));
    EXPECT_GT(s, prev) << "order " << k;
    prev = s;
  }
}

TEST(ScfMetric, RawIsSumOfDegreeProducts) {
  // Path 0-1-2 (undirected): degrees 1,2,1; arcs (0,1),(1,0),(1,2),(2,1)
  // products: 1*2 + 2*1 + 2*1 + 1*2 = 8.
  const auto el = path_graph(3);
  EXPECT_DOUBLE_EQ(scf_raw(el), 8.0);
}

TEST(ScfMetric, EmptyGraphIsZero) {
  EdgeList el(5, true);
  EXPECT_DOUBLE_EQ(scf_index(el), 0.0);
}

TEST(BfsReference, PathDepthsAreLinear) {
  const auto el = path_graph(6);
  const auto g = CscGraph::from_edges(el);
  const auto r = bfs_reference(g, 0);
  for (vidx_t v = 0; v < 6; ++v) {
    EXPECT_EQ(r.depth[static_cast<std::size_t>(v)], v);
  }
  EXPECT_EQ(r.height, 5);
  EXPECT_EQ(r.reached, 6);
}

TEST(BfsReference, DisconnectedVerticesStayUnreached) {
  EdgeList el(5, true);
  el.add_edge(0, 1);
  el.symmetrize();
  const auto g = CscGraph::from_edges(el);
  const auto r = bfs_reference(g, 0);
  EXPECT_EQ(r.reached, 2);
  EXPECT_EQ(r.depth[4], kInvalidVertex);
}

TEST(BfsReference, RespectsEdgeDirection) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  const auto g = CscGraph::from_edges(el);
  EXPECT_EQ(bfs_reference(g, 0).reached, 3);
  EXPECT_EQ(bfs_reference(g, 2).reached, 1);  // no backward arcs
}

TEST(BfsReference, MatchesQueueBfsOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto el = gen::erdos_renyi({.n = 150, .arcs = 600,
                                      .directed = true, .seed = seed});
    const auto g = CscGraph::from_edges(el);
    const auto r = bfs_reference(g, 0);

    // Independent queue BFS on an out-adjacency built directly.
    std::vector<std::vector<vidx_t>> adj(150);
    for (const Edge& e : el.edges()) adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    std::vector<vidx_t> dist(150, kInvalidVertex);
    std::queue<vidx_t> q;
    dist[0] = 0;
    q.push(0);
    while (!q.empty()) {
      const vidx_t v = q.front();
      q.pop();
      for (const vidx_t w : adj[static_cast<std::size_t>(v)]) {
        if (dist[static_cast<std::size_t>(w)] == kInvalidVertex) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
          q.push(w);
        }
      }
    }
    EXPECT_EQ(r.depth, dist) << "seed " << seed;
  }
}

TEST(BfsReference, RejectsBadSource) {
  const auto g = CscGraph::from_edges(path_graph(3));
  EXPECT_THROW(bfs_reference(g, 7), InvalidArgument);
}

}  // namespace
}  // namespace turbobc::graph
