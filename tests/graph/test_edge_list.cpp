#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {
namespace {

TEST(EdgeList, AddAndCount) {
  EdgeList el(4, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  EXPECT_EQ(el.num_vertices(), 4);
  EXPECT_EQ(el.num_arcs(), 2);
  EXPECT_TRUE(el.directed());
}

TEST(EdgeList, RejectsOutOfRangeEndpoints) {
  EdgeList el(3, true);
  EXPECT_THROW(el.add_edge(0, 3), InvalidArgument);
  EXPECT_THROW(el.add_edge(-1, 0), InvalidArgument);
}

TEST(EdgeList, CanonicalizeSortsDedupsAndDropsSelfLoops) {
  EdgeList el(5, true);
  el.add_edge(2, 1);
  el.add_edge(0, 1);
  el.add_edge(0, 1);  // duplicate
  el.add_edge(3, 3);  // self loop
  el.canonicalize();
  ASSERT_EQ(el.num_arcs(), 2);
  EXPECT_EQ(el.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(el.edges()[1], (Edge{2, 1}));
}

TEST(EdgeList, CanonicalizeIsIdempotent) {
  EdgeList el(5, true);
  el.add_edge(2, 1);
  el.add_edge(0, 4);
  el.canonicalize();
  const auto before = el.edges();
  el.canonicalize();
  EXPECT_EQ(el.edges(), before);
}

TEST(EdgeList, SymmetrizeAddsReverseArcsAndMarksUndirected) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.symmetrize();
  EXPECT_FALSE(el.directed());
  EXPECT_EQ(el.num_arcs(), 4);
}

TEST(EdgeList, SymmetrizeIsIdempotentOnArcCount) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.symmetrize();
  const auto arcs = el.num_arcs();
  el.symmetrize();
  EXPECT_EQ(el.num_arcs(), arcs);
}

TEST(EdgeList, DegreesMatchArcs) {
  EdgeList el(4, true);
  el.add_edge(0, 1);
  el.add_edge(0, 2);
  el.add_edge(3, 0);
  const auto out = el.out_degrees();
  const auto in = el.in_degrees();
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[3], 1);
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(in[1], 1);
  EXPECT_EQ(in[2], 1);
}

TEST(EdgeList, ReversedFlipsEveryArc) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(2, 0);
  const EdgeList rev = el.reversed();
  EXPECT_EQ(rev.edges()[0], (Edge{1, 0}));
  EXPECT_EQ(rev.edges()[1], (Edge{0, 2}));
}

TEST(EdgeList, EmptyGraphIsLegal) {
  EdgeList el(0, true);
  el.canonicalize();
  EXPECT_EQ(el.num_arcs(), 0);
}

}  // namespace
}  // namespace turbobc::graph
