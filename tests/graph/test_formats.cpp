#include <gtest/gtest.h>

#include "generators/random_graphs.hpp"
#include "graph/cooc.hpp"
#include "graph/csc.hpp"

namespace turbobc::graph {
namespace {

EdgeList small_directed() {
  // The paper's Figure 1 style example: a handful of arcs.
  EdgeList el(4, true);
  el.add_edge(0, 1);
  el.add_edge(0, 2);
  el.add_edge(1, 2);
  el.add_edge(2, 3);
  el.add_edge(3, 0);
  return el;
}

TEST(CscGraph, ColumnsHoldInNeighbours) {
  const CscGraph g = CscGraph::from_edges(small_directed());
  ASSERT_EQ(g.num_vertices(), 4);
  ASSERT_EQ(g.num_arcs(), 5);
  // Column 2's rows are its in-neighbours {0, 1}.
  const auto [b, e] = g.column_range(2);
  ASSERT_EQ(e - b, 2);
  EXPECT_EQ(g.row_idx()[static_cast<std::size_t>(b)], 0);
  EXPECT_EQ(g.row_idx()[static_cast<std::size_t>(b) + 1], 1);
}

TEST(CscGraph, ColPtrIsMonotoneAndComplete) {
  const CscGraph g = CscGraph::from_edges(small_directed());
  EXPECT_EQ(g.col_ptr().front(), 0);
  EXPECT_EQ(g.col_ptr().back(), g.num_arcs());
  for (std::size_t i = 1; i < g.col_ptr().size(); ++i) {
    EXPECT_LE(g.col_ptr()[i - 1], g.col_ptr()[i]);
  }
}

TEST(CscGraph, InDegreeMatchesEdgeList) {
  const auto el = small_directed();
  const CscGraph g = CscGraph::from_edges(el);
  const auto in = el.in_degrees();
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.in_degree(v), in[static_cast<std::size_t>(v)]);
  }
}

TEST(CscGraph, RowsAscendWithinColumns) {
  const auto el = gen::erdos_renyi({.n = 200, .arcs = 2000, .directed = true,
                                    .seed = 5});
  const CscGraph g = CscGraph::from_edges(el);
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    const auto [b, e] = g.column_range(v);
    for (eidx_t k = b + 1; k < e; ++k) {
      EXPECT_LT(g.row_idx()[static_cast<std::size_t>(k - 1)],
                g.row_idx()[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(CscGraph, DropsDuplicatesAndSelfLoops) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(0, 1);
  el.add_edge(1, 1);
  const CscGraph g = CscGraph::from_edges(el);
  EXPECT_EQ(g.num_arcs(), 1);
}

TEST(CoocGraph, IsColumnMajorSorted) {
  const CoocGraph g = CoocGraph::from_edges(small_directed());
  ASSERT_EQ(g.num_arcs(), 5);
  for (std::size_t k = 1; k < g.col_idx().size(); ++k) {
    const bool ordered =
        g.col_idx()[k - 1] < g.col_idx()[k] ||
        (g.col_idx()[k - 1] == g.col_idx()[k] &&
         g.row_idx()[k - 1] < g.row_idx()[k]);
    EXPECT_TRUE(ordered) << "at nonzero " << k;
  }
}

TEST(CoocGraph, MatchesCscExpansion) {
  const auto el = gen::erdos_renyi({.n = 100, .arcs = 900, .directed = true,
                                    .seed = 7});
  const CscGraph csc = CscGraph::from_edges(el);
  const CoocGraph cooc = CoocGraph::from_edges(el);
  ASSERT_EQ(csc.num_arcs(), cooc.num_arcs());
  // Expanding the CSC column pointers must reproduce COOC's col array, and
  // the row arrays must agree entry for entry ("COOC is the transpose-order
  // coordinate expansion of CSC").
  std::size_t k = 0;
  for (vidx_t v = 0; v < csc.num_vertices(); ++v) {
    const auto [b, e] = csc.column_range(v);
    for (eidx_t i = b; i < e; ++i, ++k) {
      EXPECT_EQ(cooc.col_idx()[k], v);
      EXPECT_EQ(cooc.row_idx()[k],
                csc.row_idx()[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Formats, StorageBytesMatchPaperInventory) {
  const auto el = small_directed();
  const CscGraph csc = CscGraph::from_edges(el);
  const CoocGraph cooc = CoocGraph::from_edges(el);
  // CSC: (n+1) pointers + m rows; COOC: 2m indices.
  EXPECT_EQ(csc.storage_bytes(),
            5 * sizeof(eidx_t) + 5 * sizeof(vidx_t));
  EXPECT_EQ(cooc.storage_bytes(), 10 * sizeof(vidx_t));
}

TEST(Formats, UndirectedGraphsProduceSymmetricStructure) {
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.symmetrize();
  const CscGraph g = CscGraph::from_edges(el);
  // Symmetric: in-degree == out-degree for every vertex.
  const auto out = el.out_degrees();
  for (vidx_t v = 0; v < 3; ++v) {
    EXPECT_EQ(g.in_degree(v), out[static_cast<std::size_t>(v)]);
  }
}

}  // namespace
}  // namespace turbobc::graph
