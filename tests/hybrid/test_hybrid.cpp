// Hybrid co-execution engine: bit-identity against the single-engine scCSC
// run on every generator family at pool widths 1 and 8, ledger algebra,
// scheduler bookkeeping, and the constructor contract.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "hybrid/hybrid_bc.hpp"
#include "hybrid/ledger.hpp"

namespace turbobc::hybrid {
namespace {

struct PoolGuard {
  explicit PoolGuard(unsigned width) {
    sim::ExecutorPool::instance().set_threads(width);
  }
  ~PoolGuard() { sim::ExecutorPool::instance().set_threads(1); }
};

struct FamilyCase {
  const char* name;
  graph::EdgeList graph;
};

std::vector<FamilyCase> family_cases() {
  std::vector<FamilyCase> cases;
  cases.push_back({"mycielski", gen::mycielski(7)});
  cases.push_back({"kronecker",
                   gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 21})});
  cases.push_back({"small_world",
                   gen::small_world({.n = 250, .k = 6, .rewire_p = 0.15,
                                     .seed = 22})});
  cases.push_back({"triangulated_grid", gen::triangulated_grid(14, 13)});
  cases.push_back({"markov_lattice",
                   gen::markov_lattice({.length = 16, .width = 12,
                                        .burst_p = 0.02, .burst_size = 10,
                                        .seed = 23})});
  cases.push_back({"road",
                   gen::road_network({.grid_rows = 5, .grid_cols = 5,
                                      .keep_p = 0.7, .subdivisions = 4,
                                      .seed = 24})});
  cases.push_back({"kmer",
                   gen::kmer_like({.chains = 10, .chain_len = 18,
                                   .branching = 3, .seed = 25})});
  cases.push_back({"preferential",
                   gen::preferential_attachment({.n = 220, .m_attach = 2,
                                                 .directed = false,
                                                 .seed = 26})});
  cases.push_back({"superhub",
                   gen::superhub_social({.n = 220, .out_degree = 6,
                                         .celebrities = 3, .celebrity_p = 0.3,
                                         .seed = 27})});
  cases.push_back({"web_crawl",
                   gen::web_crawl({.n = 220, .out_degree = 5, .copy_p = 0.4,
                                   .local_p = 0.8, .window = 25, .seed = 28})});
  cases.push_back({"traffic",
                   gen::traffic_trace({.n = 250, .hubs = 5, .decay = 0.5,
                                       .seed = 29})});
  cases.push_back({"erdos_renyi_directed",
                   gen::erdos_renyi({.n = 200, .arcs = 900, .directed = true,
                                     .seed = 30})});
  cases.push_back({"random_local_digraph",
                   gen::random_local_digraph({.n = 220, .mean_out_degree = 5,
                                              .degree_dispersion = 0.9,
                                              .max_out_degree = 40,
                                              .window = 25, .global_p = 0.02,
                                              .seed = 31})});
  return cases;
}

void expect_bitwise_equal(const std::vector<bc_t>& a,
                          const std::vector<bc_t>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(std::memcmp(&a[v], &b[v], sizeof(bc_t)), 0)
        << what << " differs at vertex " << v << ": " << a[v] << " vs "
        << b[v];
  }
}

// ---------------------------------------------------------------------------
// MakespanLedger algebra.

TEST(MakespanLedger, ChargesAccumulatePerLane) {
  MakespanLedger ledger(3);
  EXPECT_EQ(ledger.lanes(), 3u);
  EXPECT_DOUBLE_EQ(ledger.charge(0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(ledger.charge(0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(ledger.charge(1, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(ledger.lane_clock(2), 0.0);
  EXPECT_DOUBLE_EQ(ledger.makespan(), 3.0);
}

TEST(MakespanLedger, LeastBusyBreaksTiesLow) {
  MakespanLedger ledger(3);
  EXPECT_EQ(ledger.least_busy(), 0u);
  ledger.charge(0, 1.0);
  EXPECT_EQ(ledger.least_busy(), 1u);
  ledger.charge(1, 1.0);
  ledger.charge(2, 1.0);
  EXPECT_EQ(ledger.least_busy(), 0u);  // all equal again
}

TEST(MakespanLedger, BarrierRaisesEveryLane) {
  MakespanLedger ledger(2);
  ledger.charge(0, 5.0);
  ledger.charge(1, 1.0);
  ledger.barrier();
  EXPECT_DOUBLE_EQ(ledger.lane_clock(1), 5.0);
  EXPECT_DOUBLE_EQ(ledger.barrier_clock(), 5.0);
  // Work after the barrier starts at the barrier even on the idle lane.
  EXPECT_DOUBLE_EQ(ledger.charge(1, 2.0), 7.0);
  EXPECT_DOUBLE_EQ(ledger.makespan(), 7.0);
}

TEST(MakespanLedger, RejectsZeroLanes) {
  EXPECT_THROW(MakespanLedger(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Constructor contract.

TEST(HybridTurboBC, PinsScCscAndRejectsUnsupportedModes) {
  const auto g = gen::mycielski(5);
  sim::Device device;
  HybridTurboBC hybrid(device, g, {.variant = bc::Variant::kVeCsc});
  EXPECT_EQ(hybrid.options().variant, bc::Variant::kScCsc);

  EXPECT_THROW(HybridTurboBC(device, g, {.edge_bc = true}), InvalidArgument);
  EXPECT_THROW(HybridTurboBC(device, g, {.compress = true}), InvalidArgument);
  EXPECT_THROW(HybridTurboBC(device, g, {}, {.devices = 0}), InvalidArgument);
}

TEST(HybridTurboBC, RejectsEmptySourceList) {
  const auto g = gen::mycielski(5);
  sim::Device device;
  HybridTurboBC hybrid(device, g);
  EXPECT_THROW(hybrid.run_sources({}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Bit-identity sweep: hybrid == single-engine scCSC run_exact on every
// family, at pool width 1 and 8, with 1 and 2 modeled devices.

class HybridFamilySweep
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(HybridFamilySweep, ExactBcBitIdenticalToSingleEngine) {
  const auto cases = family_cases();
  const auto& c = cases[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const unsigned width = std::get<1>(GetParam());
  PoolGuard pool(width);

  sim::Device single_dev;
  bc::TurboBC single(single_dev, c.graph, {.variant = bc::Variant::kScCsc});
  const auto want = single.run_exact();

  sim::Device hybrid_dev;
  HybridTurboBC hybrid(hybrid_dev, c.graph, {}, {.devices = 2});
  const auto got = hybrid.run_exact();

  expect_bitwise_equal(got.result.bc, want.bc, c.name);
  EXPECT_EQ(got.result.sources, want.sources) << c.name;
  EXPECT_EQ(got.result.last_source.bfs_depth, want.last_source.bfs_depth)
      << c.name;
  EXPECT_EQ(got.result.last_source.reached, want.last_source.reached)
      << c.name;
}

std::string hybrid_sweep_name(
    const ::testing::TestParamInfo<std::tuple<int, unsigned>>& info) {
  static const char* families[] = {
      "mycielski", "kronecker",  "small_world", "grid",
      "markov",    "road",       "kmer",        "preferential",
      "superhub",  "web_crawl",  "traffic",     "erdos_renyi",
      "local_digraph"};
  return std::string(families[std::get<0>(info.param)]) + "_threads" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HybridFamilySweep,
                         ::testing::Combine(::testing::Range(0, 13),
                                            ::testing::Values(1u, 8u)),
                         hybrid_sweep_name);

// ---------------------------------------------------------------------------
// Thread-determinism of the full report: the schedule, ledger, and stats
// are computed from modeled quantities only, so pool width 1 and 8 agree
// bit for bit on everything, not just the BC vector.

TEST(HybridTurboBC, ReportIsIdenticalAcrossPoolWidths) {
  const auto g = gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 21});

  const auto run_at = [&](unsigned width) {
    PoolGuard pool(width);
    sim::Device device;
    HybridTurboBC hybrid(device, g, {}, {.devices = 2});
    return hybrid.run_exact();
  };
  const auto a = run_at(1);
  const auto b = run_at(8);

  expect_bitwise_equal(a.result.bc, b.result.bc, "bc");
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.busy_seconds, b.busy_seconds);
  EXPECT_EQ(a.probe_block, b.probe_block);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_EQ(a.result.device_seconds, b.result.device_seconds);
  EXPECT_EQ(a.result.peak_device_bytes, b.result.peak_device_bytes);
  ASSERT_EQ(a.processors.size(), b.processors.size());
  for (std::size_t p = 0; p < a.processors.size(); ++p) {
    EXPECT_EQ(a.processors[p].name, b.processors[p].name);
    EXPECT_EQ(a.processors[p].blocks, b.processors[p].blocks);
    EXPECT_EQ(a.processors[p].sources, b.processors[p].sources);
    EXPECT_EQ(a.processors[p].rate, b.processors[p].rate);
    EXPECT_EQ(a.processors[p].busy_seconds, b.processors[p].busy_seconds);
    EXPECT_EQ(a.processors[p].utilization, b.processors[p].utilization);
  }
}

// ---------------------------------------------------------------------------
// Scheduler bookkeeping invariants.

TEST(HybridTurboBC, LedgerAccountingIsConsistent) {
  const auto g = gen::small_world({.n = 250, .k = 6, .rewire_p = 0.15,
                                   .seed = 22});
  sim::Device device;
  HybridTurboBC hybrid(device, g, {}, {.devices = 2});
  const auto r = hybrid.run_exact();

  ASSERT_EQ(r.processors.size(), 3u);  // gpu0, gpu1, host
  EXPECT_EQ(r.processors[0].name, "gpu0");
  EXPECT_EQ(r.processors[1].name, "gpu1");
  EXPECT_EQ(r.processors[2].name, "host");
  EXPECT_EQ(r.num_blocks, 64u);  // 250 sources -> full 64-block plan

  std::size_t blocks = 0, sources = 0;
  double busy = 0.0;
  for (const auto& p : r.processors) {
    blocks += p.blocks;
    sources += p.sources;
    busy += p.busy_seconds;
    EXPECT_GE(p.rate, 0.0);
    EXPECT_GE(p.utilization, 0.0);
    EXPECT_LE(p.utilization, 1.0 + 1e-12) << p.name;
  }
  EXPECT_EQ(blocks, r.num_blocks);
  EXPECT_EQ(sources, static_cast<std::size_t>(g.num_vertices()));
  // Per-processor busy includes the probe's host co-run; the run-level
  // serial sum does not double count the probe's device time.
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_LE(r.makespan_seconds, busy + 1e-15);
  EXPECT_GE(busy, r.busy_seconds);
  EXPECT_GT(r.host_ops.alu_ops, 0u);  // probe always runs on the host
  EXPECT_EQ(r.result.device_seconds, r.makespan_seconds);
}

// The probe runs on both processors even when every block lands on the
// devices; single-block runs exercise that degenerate path.
TEST(HybridTurboBC, SingleBlockRunStillProbes) {
  const auto g = gen::mycielski(5);
  sim::Device device;
  HybridTurboBC hybrid(device, g);
  std::vector<vidx_t> sources(static_cast<std::size_t>(g.num_vertices()));
  std::iota(sources.begin(), sources.end(), 0);
  // <= 64 sources: one source per block, still co-validated per run.
  const auto r = hybrid.run_sources(sources);
  EXPECT_EQ(r.num_blocks, sources.size());

  sim::Device single_dev;
  bc::TurboBC single(single_dev, g, {.variant = bc::Variant::kScCsc});
  expect_bitwise_equal(r.result.bc, single.run_exact().bc, "mycielski");
}

}  // namespace
}  // namespace turbobc::hybrid
