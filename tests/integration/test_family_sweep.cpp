// Property sweep: TurboBC must agree with Brandes on EVERY generator family,
// with EVERY SpMV variant, for single-source vertex BC and (spot-checked)
// edge BC — the exhaustive cross product the module tests sample from.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/brandes.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/suite.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"

namespace turbobc::bench {
namespace {

struct FamilyCase {
  const char* name;
  graph::EdgeList graph;
};

std::vector<FamilyCase> family_cases() {
  std::vector<FamilyCase> cases;
  cases.push_back({"mycielski", gen::mycielski(7)});
  cases.push_back({"kronecker",
                   gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 21})});
  cases.push_back({"small_world",
                   gen::small_world({.n = 250, .k = 6, .rewire_p = 0.15,
                                     .seed = 22})});
  cases.push_back({"triangulated_grid", gen::triangulated_grid(14, 13)});
  cases.push_back({"markov_lattice",
                   gen::markov_lattice({.length = 16, .width = 12,
                                        .burst_p = 0.02, .burst_size = 10,
                                        .seed = 23})});
  cases.push_back({"road",
                   gen::road_network({.grid_rows = 5, .grid_cols = 5,
                                      .keep_p = 0.7, .subdivisions = 4,
                                      .seed = 24})});
  cases.push_back({"kmer",
                   gen::kmer_like({.chains = 10, .chain_len = 18,
                                   .branching = 3, .seed = 25})});
  cases.push_back({"preferential",
                   gen::preferential_attachment({.n = 220, .m_attach = 2,
                                                 .directed = false,
                                                 .seed = 26})});
  cases.push_back({"superhub",
                   gen::superhub_social({.n = 220, .out_degree = 6,
                                         .celebrities = 3, .celebrity_p = 0.3,
                                         .seed = 27})});
  cases.push_back({"web_crawl",
                   gen::web_crawl({.n = 220, .out_degree = 5, .copy_p = 0.4,
                                   .local_p = 0.8, .window = 25, .seed = 28})});
  cases.push_back({"traffic",
                   gen::traffic_trace({.n = 250, .hubs = 5, .decay = 0.5,
                                       .seed = 29})});
  cases.push_back({"erdos_renyi_directed",
                   gen::erdos_renyi({.n = 200, .arcs = 900, .directed = true,
                                     .seed = 30})});
  cases.push_back({"random_local_digraph",
                   gen::random_local_digraph({.n = 220, .mean_out_degree = 5,
                                              .degree_dispersion = 0.9,
                                              .max_out_degree = 40,
                                              .window = 25, .global_p = 0.02,
                                              .seed = 31})});
  return cases;
}

class FamilySweep
    : public ::testing::TestWithParam<std::tuple<int, bc::Variant>> {};

TEST_P(FamilySweep, VertexBcMatchesBrandes) {
  const auto cases = family_cases();
  const auto& c = cases[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const bc::Variant variant = std::get<1>(GetParam());

  const vidx_t source = representative_source(c.graph);
  const auto golden = baseline::brandes_delta(c.graph, source);

  sim::Device device;
  bc::TurboBC turbo(device, c.graph, {.variant = variant});
  const auto r = turbo.run_single_source(source);
  EXPECT_LT(bc_max_rel_error(r.bc, golden), 1e-6)
      << c.name << " / " << bc::to_string(variant);
}

TEST_P(FamilySweep, EdgeBcMatchesBrandes) {
  const auto cases = family_cases();
  const auto& c = cases[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const bc::Variant variant = std::get<1>(GetParam());

  const vidx_t source = representative_source(c.graph);
  const auto golden = baseline::brandes_edge_delta(c.graph, source);

  sim::Device device;
  bc::TurboBC turbo(device, c.graph, {.variant = variant, .edge_bc = true});
  const auto r = turbo.run_single_source(source);
  EXPECT_LT(bc_max_rel_error(r.edge_bc, golden), 1e-6)
      << c.name << " / " << bc::to_string(variant);
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<int, bc::Variant>>& info) {
  static const char* families[] = {
      "mycielski", "kronecker",  "small_world", "grid",
      "markov",    "road",       "kmer",        "preferential",
      "superhub",  "web_crawl",  "traffic",     "erdos_renyi",
      "local_digraph"};
  return std::string(families[std::get<0>(info.param)]) + "_" +
         std::string(bc::to_string(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllVariants, FamilySweep,
    ::testing::Combine(::testing::Range(0, 13),
                       ::testing::Values(bc::Variant::kScCooc,
                                         bc::Variant::kScCsc,
                                         bc::Variant::kVeCsc)),
    sweep_name);

}  // namespace
}  // namespace turbobc::bench
