// Cross-cutting algebraic properties of the BC implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/brandes.hpp"
#include "baselines/gunrock_like.hpp"
#include "bench_support/runner.hpp"
#include "common/prng.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "graph/bfs_probe.hpp"

namespace turbobc::bc {
namespace {

using graph::EdgeList;

TEST(BcProperties, SourceContributionsAreAdditive) {
  // BC is a sum over sources: run_sources({a, b, c}) must equal the sum of
  // the three single-source runs.
  const auto el = gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 41});
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kVeCsc});

  const std::vector<vidx_t> sources = {0, 7, 19};
  const auto combined = turbo.run_sources(sources);

  std::vector<bc_t> summed(combined.bc.size(), 0.0);
  for (const vidx_t s : sources) {
    const auto single = turbo.run_single_source(s);
    for (std::size_t v = 0; v < summed.size(); ++v) {
      summed[v] += single.bc[v];
    }
  }
  for (std::size_t v = 0; v < summed.size(); ++v) {
    EXPECT_NEAR(combined.bc[v], summed[v],
                1e-9 * std::max(1.0, std::abs(summed[v])))
        << v;
  }
}

TEST(BcProperties, BcIsNonNegative) {
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    const auto el = gen::erdos_renyi({.n = 120, .arcs = 500,
                                      .directed = seed % 2 == 0,
                                      .seed = seed});
    sim::Device dev;
    TurboBC turbo(dev, el, {});
    const auto r = turbo.run_exact();
    for (const bc_t v : r.bc) EXPECT_GE(v, -1e-12);
  }
}

TEST(BcProperties, VertexBcBoundedByPairCount) {
  // bc(v) <= (n-1)(n-2)/2 for undirected, (n-1)(n-2) for directed.
  const auto el = gen::small_world({.n = 100, .k = 4, .rewire_p = 0.2,
                                    .seed = 54});
  sim::Device dev;
  TurboBC turbo(dev, el, {});
  const auto r = turbo.run_exact();
  const double bound = 99.0 * 98.0 / 2.0;
  for (const bc_t v : r.bc) EXPECT_LE(v, bound + 1e-9);
}

TEST(BcProperties, EdgeBcSumEqualsPathLengthSum) {
  // Sum of all arc BC values = sum over reachable pairs of d(s,t)
  // (each shortest path of length L crosses L arcs; halving and pair
  // double-counting cancel for undirected graphs).
  const auto el = gen::mycielski(6);
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCsc, .edge_bc = true});
  const auto r = turbo.run_exact();

  double edge_sum = 0.0;
  for (const bc_t v : r.edge_bc) edge_sum += v;

  const auto csc = graph::CscGraph::from_edges(el);
  double dist_sum = 0.0;
  for (vidx_t s = 0; s < el.num_vertices(); ++s) {
    const auto probe = graph::bfs_reference(csc, s);
    for (const vidx_t d : probe.depth) {
      if (d > 0) dist_sum += d;
    }
  }
  EXPECT_NEAR(edge_sum, dist_sum / 2.0, 1e-6 * dist_sum);  // undirected halving
}

TEST(BcProperties, VertexBcRelatesToEdgeBcConservation) {
  // For each source, the dependency entering a non-source vertex v over its
  // in-arcs equals delta(v) + (paths ending at v): checked in aggregate via
  // Brandes on a directed graph — TurboBC's edge and vertex results must
  // satisfy sum(in-arcs of v) >= bc(v) contribution (flow conservation
  // direction) on DA-like chains.
  EdgeList el(4, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.add_edge(2, 3);
  sim::Device dev;
  TurboBC turbo(dev, el, {.variant = Variant::kScCsc, .edge_bc = true});
  const auto r = turbo.run_exact();
  // Arc (0,1) carries 3 pairs, vertex 1 lies on 2 pairs: edge >= vertex.
  EXPECT_GE(r.edge_bc[0] + 1e-12, r.bc[1]);
}

TEST(BcProperties, RelabelingInvariance) {
  // BC must commute with vertex relabeling.
  const auto el = gen::erdos_renyi({.n = 80, .arcs = 320, .directed = false,
                                    .seed = 55});
  const vidx_t n = el.num_vertices();

  // Random permutation.
  Xoshiro256 rng(99);
  std::vector<vidx_t> perm(static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform(i)]);
  }
  EdgeList relabeled(n, el.directed());
  for (const graph::Edge& e : el.edges()) {
    relabeled.add_edge(perm[static_cast<std::size_t>(e.u)],
                       perm[static_cast<std::size_t>(e.v)]);
  }

  sim::Device d1, d2;
  TurboBC t1(d1, el, {});
  TurboBC t2(d2, relabeled, {});
  const auto r1 = t1.run_exact();
  const auto r2 = t2.run_exact();
  for (vidx_t v = 0; v < n; ++v) {
    EXPECT_NEAR(r1.bc[static_cast<std::size_t>(v)],
                r2.bc[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])],
                1e-9 * std::max(1.0, r1.bc[static_cast<std::size_t>(v)]))
        << v;
  }
}

TEST(BcProperties, ReversedGraphSwapsNothingForUndirected) {
  const auto el = gen::small_world({.n = 150, .k = 4, .rewire_p = 0.1,
                                    .seed = 56});
  const auto rev = el.reversed();
  sim::Device d1, d2;
  TurboBC t1(d1, el, {});
  TurboBC t2(d2, rev, {});
  const auto a = t1.run_single_source(3);
  const auto b = t2.run_single_source(3);
  for (std::size_t v = 0; v < a.bc.size(); ++v) {
    EXPECT_NEAR(a.bc[v], b.bc[v], 1e-9);
  }
}

TEST(GunrockBookkeeping, PredsAndVisitedAreMaintained) {
  const auto el = gen::erdos_renyi({.n = 200, .arcs = 700, .directed = false,
                                    .seed = 57});
  sim::Device dev;
  baseline::GunrockLikeBc g(dev, el);
  g.run_single_source(0);
  const auto& agg = dev.kernel_aggregates();
  // The framework passes (bitmap conversion, filter) must have run.
  EXPECT_TRUE(agg.count("gunrock_filter") > 0 ||
              agg.count("gunrock_filter_uniquify") > 0);
}

TEST(EdgeListFuzz, CanonicalizeIdempotentUnderRandomOps) {
  Xoshiro256 rng(77);
  for (int round = 0; round < 20; ++round) {
    const auto n = static_cast<vidx_t>(2 + rng.uniform(60));
    EdgeList el(n, rng.bernoulli(0.5));
    const auto arcs = rng.uniform(200);
    for (std::uint64_t e = 0; e < arcs; ++e) {
      el.add_edge(static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n))),
                  static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n))));
    }
    el.canonicalize();
    auto once = el.edges();
    el.canonicalize();
    EXPECT_EQ(el.edges(), once) << "round " << round;
    // Invariants: sorted, unique, no self loops.
    for (std::size_t i = 0; i < once.size(); ++i) {
      EXPECT_NE(once[i].u, once[i].v);
      if (i > 0) {
        EXPECT_TRUE(once[i - 1].u < once[i].u ||
                    (once[i - 1].u == once[i].u && once[i - 1].v < once[i].v));
      }
    }
    // Symmetrize is idempotent and makes in == out degrees.
    el.symmetrize();
    const auto arcs_after = el.num_arcs();
    el.symmetrize();
    EXPECT_EQ(el.num_arcs(), arcs_after);
    EXPECT_EQ(el.out_degrees(), el.in_degrees());
  }
}

}  // namespace
}  // namespace turbobc::bc
