// Shape-regression tests: the paper's headline qualitative results, pinned
// as assertions so model recalibration cannot silently break them. Each test
// names the paper artifact it guards.
#include <gtest/gtest.h>

#include "baselines/gunrock_like.hpp"
#include "baselines/ligra_like.hpp"
#include "baselines/bc_la_seq.hpp"
#include "bench_support/suite.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"

namespace turbobc::bench {
namespace {

double turbo_seconds(const graph::EdgeList& g, bc::Variant v, vidx_t s) {
  sim::Device dev;
  dev.set_keep_launch_records(false);
  bc::TurboBC turbo(dev, g, {.variant = v});
  return turbo.run_single_source(s).device_seconds;
}

TEST(PaperShapes, Table1TurboBeatsGunrockOnRegularGraphs) {
  const auto g = gen::markov_lattice({.length = 42, .width = 80,
                                      .burst_p = 0.01, .burst_size = 24,
                                      .seed = 11});
  const vidx_t s = representative_source(g);
  const double turbo = turbo_seconds(g, bc::Variant::kScCsc, s);
  sim::Device dev;
  baseline::GunrockLikeBc gunrock(dev, g);
  const double gr = gunrock.run_single_source(s).device_seconds;
  EXPECT_GT(gr / turbo, 1.1);  // paper: 1.8-2.7x; guard the direction + margin
}

TEST(PaperShapes, Table1TurboBeatsSequentialByAtLeast5x) {
  const auto g = gen::markov_lattice({.length = 62, .width = 80,
                                      .burst_p = 0.01, .burst_size = 24,
                                      .seed = 13});
  const vidx_t s = representative_source(g);
  const double turbo = turbo_seconds(g, bc::Variant::kScCsc, s);
  const auto seq =
      baseline::SequentialBcLa(g).run_single_source(s).modeled_seconds;
  EXPECT_GT(seq / turbo, 5.0);  // paper: 11.4x
}

TEST(PaperShapes, Table1TurboBeatsLigra) {
  const auto g = gen::triangulated_grid(60, 55);
  const vidx_t s = representative_source(g);
  const double turbo = turbo_seconds(g, bc::Variant::kScCsc, s);
  const auto ligra =
      baseline::LigraLikeBc(g).run_single_source(s).modeled_seconds;
  EXPECT_GT(ligra / turbo, 1.0);  // paper: 1.2x
}

TEST(PaperShapes, Table2CoocBeatsCscOnHubTraces) {
  const auto g = gen::traffic_trace({.n = 15000, .hubs = 10, .decay = 0.45,
                                     .seed = 28});
  const vidx_t s = representative_source(g);
  EXPECT_GT(turbo_seconds(g, bc::Variant::kScCsc, s) /
                turbo_seconds(g, bc::Variant::kScCooc, s),
            2.0);  // the load-imbalance story; measured ~3.2x
}

TEST(PaperShapes, Table3VeCscBeatsScCscOnIrregularGraphs) {
  const auto g = gen::mycielski(12);
  const vidx_t s = representative_source(g);
  EXPECT_GT(turbo_seconds(g, bc::Variant::kScCsc, s) /
                turbo_seconds(g, bc::Variant::kVeCsc, s),
            1.5);  // measured ~3x
}

TEST(PaperShapes, Table3GunrockGapGrowsWithMycielskiSize) {
  double prev_ratio = 0.0;
  for (const int order : {9, 11, 13}) {
    const auto g = gen::mycielski(order);
    const vidx_t s = representative_source(g);
    const double turbo = turbo_seconds(g, bc::Variant::kVeCsc, s);
    sim::Device dev;
    baseline::GunrockLikeBc gunrock(dev, g);
    const double ratio = gunrock.run_single_source(s).device_seconds / turbo;
    EXPECT_GT(ratio, prev_ratio) << "order " << order;
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 2.0);  // paper reaches 2.7x at the top of the sweep
}

TEST(PaperShapes, Figure5bVeCscGltExceedsTheoreticalOnDenseFrontiers) {
  const auto g = gen::mycielski(13);
  sim::Device dev;
  bc::TurboBC turbo(dev, g, {.variant = bc::Variant::kVeCsc});
  turbo.run_single_source(representative_source(g));
  std::uint64_t loads = 0;
  double time = 0.0;
  for (const auto& [name, agg] : dev.kernel_aggregates()) {
    if (name.rfind("bfs_spmv", 0) == 0 || name.rfind("dep_spmv", 0) == 0) {
      loads += agg.load_transactions;
      time += agg.time_s;
    }
  }
  const double glt = static_cast<double>(loads) * 32.0 / time;
  EXPECT_GT(glt, dev.props().theoretical_glt_bps);
}

TEST(PaperShapes, Figure5aGunrockUsesMoreMemoryAtEverySize) {
  for (const int order : {8, 10, 12}) {
    const auto g = gen::mycielski(order);
    const vidx_t s = representative_source(g);
    std::size_t turbo_peak, gr_peak;
    {
      sim::Device dev;
      bc::TurboBC t(dev, g, {.variant = bc::Variant::kVeCsc});
      turbo_peak = t.run_single_source(s).peak_device_bytes;
    }
    {
      sim::Device dev;
      baseline::GunrockLikeBc gr(dev, g);
      gr_peak = gr.run_single_source(s).peak_device_bytes;
    }
    EXPECT_GT(static_cast<double>(gr_peak),
              1.5 * static_cast<double>(turbo_peak))
        << "order " << order;
  }
}

TEST(PaperShapes, Section34FloatBfsIsSlowerOnAtomicHeavyVariant) {
  const auto g = gen::mycielski(12);
  const vidx_t s = representative_source(g);
  double t_int, t_float;
  {
    sim::Device dev;
    bc::TurboBC turbo(dev, g, {.variant = bc::Variant::kScCooc});
    t_int = turbo.run_single_source(s).device_seconds;
  }
  {
    sim::Device dev;
    bc::TurboBC turbo(dev, g,
                      {.variant = bc::Variant::kScCooc, .float_bfs = true});
    t_float = turbo.run_single_source(s).device_seconds;
  }
  EXPECT_GT(t_float / t_int, 1.1);
}

TEST(PaperShapes, DeepGraphsAreLaunchOverheadBound) {
  // The per-level overhead structure behind Table 1's road row: modeled
  // time must scale ~linearly with depth for fixed n and m.
  const auto shallow = gen::road_network({.grid_rows = 8, .grid_cols = 8,
                                          .keep_p = 0.8, .subdivisions = 4,
                                          .seed = 81});
  const auto deep = gen::road_network({.grid_rows = 8, .grid_cols = 8,
                                       .keep_p = 0.8, .subdivisions = 16,
                                       .seed = 81});
  const double ts = turbo_seconds(shallow, bc::Variant::kScCsc,
                                  representative_source(shallow));
  const double td = turbo_seconds(deep, bc::Variant::kScCsc,
                                  representative_source(deep));
  EXPECT_GT(td / ts, 2.0);  // ~4x the depth
}

}  // namespace
}  // namespace turbobc::bench
