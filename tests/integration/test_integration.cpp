// Integration tests: the bench_support runner end to end on small replicas
// of the paper's workloads, cross-checking every implementation against
// every other and the claims the benches rely on.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/bc_la_seq.hpp"
#include "baselines/brandes.hpp"
#include "baselines/gunrock_like.hpp"
#include "baselines/ligra_like.hpp"
#include "bench_support/mteps.hpp"
#include "bench_support/runner.hpp"
#include "bench_support/suite.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "graph/bfs_probe.hpp"

namespace turbobc::bench {
namespace {

Workload small_workload(bc::Variant v) {
  return Workload{"test", "erdos_renyi",
                  gen::erdos_renyi({.n = 300, .arcs = 1800, .directed = false,
                                    .seed = 5}),
                  v, PaperRow{}};
}

TEST(Runner, SingleSourceExperimentVerifiesAllImplementations) {
  const auto row = run_single_source_experiment(small_workload(
      bc::Variant::kScCsc));
  EXPECT_TRUE(row.verified);
  EXPECT_GT(row.turbo_ms, 0.0);
  EXPECT_GT(row.seq_ms, 0.0);
  EXPECT_GT(row.gunrock_ms, 0.0);
  EXPECT_GT(row.ligra_ms, 0.0);
  EXPECT_FALSE(row.gunrock_oom);
  EXPECT_GT(row.mteps, 0.0);
  EXPECT_GT(row.turbo_peak_bytes, 0u);
  EXPECT_GT(row.gunrock_peak_bytes, row.turbo_peak_bytes);
}

TEST(Runner, ExactExperimentVerifies) {
  RunnerConfig cfg;
  cfg.run_gunrock = false;
  cfg.run_ligra = false;
  Workload w{"tiny", "mycielski", gen::mycielski(6), bc::Variant::kVeCsc,
             PaperRow{}};
  const auto row = run_exact_experiment(w, cfg);
  EXPECT_TRUE(row.verified);
  // Tiny graph: no speedup expected (overhead-bound), only a valid ratio.
  EXPECT_GT(row.speedup_seq, 0.0);
  EXPECT_GT(row.mteps, 0.0);
}

TEST(Runner, GunrockOomIsReportedNotFatal) {
  RunnerConfig cfg;
  // Capacity between the TurboBC peak (~5 KB here) and the gunrock
  // inventory (~10 KB).
  cfg.device_props = sim::DeviceProps::titan_xp();
  cfg.device_props.global_mem_bytes = 8 * 1024;
  cfg.run_ligra = false;
  cfg.run_sequential = false;
  Workload w{"oom", "erdos_renyi",
             gen::erdos_renyi({.n = 100, .arcs = 500, .directed = true,
                               .seed = 6}),
             bc::Variant::kScCsc, PaperRow{}};
  // TurboBC must fit, gunrock must OOM at this capacity.
  const auto row = run_single_source_experiment(w, cfg);
  EXPECT_TRUE(row.gunrock_oom);
  EXPECT_TRUE(row.verified);
}

TEST(Runner, PrintRowsRendersPaperColumns) {
  const auto row = run_single_source_experiment(small_workload(
      bc::Variant::kVeCsc));
  std::ostringstream os;
  print_rows(os, "title", {row}, false, false);
  const std::string out = os.str();
  EXPECT_NE(out.find("(gunrock)x"), std::string::npos);
  EXPECT_NE(out.find("paper(seq)x"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);  // verified column
}

TEST(Runner, BcMaxRelErrorDetectsMismatch) {
  EXPECT_LT(bc_max_rel_error({1.0, 2.0}, {1.0, 2.0}), 1e-12);
  EXPECT_GT(bc_max_rel_error({1.0, 2.0}, {1.0, 3.0}), 0.3);
  EXPECT_GT(bc_max_rel_error({1.0}, {1.0, 2.0}), 1.0);  // size mismatch
}

TEST(Suite, AllSingleSourceSuitesVerifyOnTheirPinnedVariants) {
  // Miniature end-to-end sweep: one workload per suite (full sweeps are the
  // benches' job; this guards the suite definitions compile-and-verify).
  for (const auto& suite : {table1_suite(), table2_suite(), table3_suite()}) {
    const Workload& w = suite.front();
    const vidx_t source = representative_source(w.graph);
    sim::Device device;
    bc::TurboBC turbo(device, w.graph, {.variant = w.variant});
    const auto r = turbo.run_single_source(source);
    const auto golden = baseline::brandes_delta(w.graph, source);
    EXPECT_LT(bc_max_rel_error(r.bc, golden), 1e-6) << w.name;
  }
}

TEST(Suite, WorkloadsMatchTheirPaperStructure) {
  // Spot checks that the generators hit the structural targets the tables
  // report (exact values are printed by the benches).
  const auto t1 = table1_suite();
  ASSERT_GE(t1.size(), 10u);
  for (const auto& w : t1) {
    EXPECT_GT(w.graph.num_vertices(), 1000) << w.name;
    EXPECT_FALSE(graph::is_irregular(w.graph)) << w.name;  // Table 1: regular
  }
  for (const auto& w : table3_suite()) {
    EXPECT_TRUE(graph::is_irregular(w.graph)) << w.name;  // Table 3: irregular
  }
}

TEST(Suite, MycielskiSweepIsSorted) {
  const auto sweep = mycielski_sweep();
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i - 1].graph.num_vertices(),
              sweep[i].graph.num_vertices());
  }
}

TEST(Suite, RepresentativeSourceReachesMostOfTheGraph) {
  for (const auto& w : table2_suite()) {
    const vidx_t s = representative_source(w.graph);
    const auto r = graph::bfs_reference(
        graph::CscGraph::from_edges(w.graph), s);
    EXPECT_GT(r.reached, w.graph.num_vertices() / 2) << w.name;
  }
}

TEST(Mteps, FormulasMatchThePaper) {
  // Per-vertex BC: m/t with m in thousands and t in ms == edges/s/1e6.
  EXPECT_DOUBLE_EQ(mteps_single_source(1000000, 1.0), 1.0);
  // Exact BC: n*m in millions over seconds.
  EXPECT_DOUBLE_EQ(mteps_exact(1000, 1000000, 10.0), 100.0);
  // A zero or negative runtime means the caller's timing accounting broke;
  // it must throw, not feed a silent 0.0 into a BENCH_*.json row.
  EXPECT_THROW(mteps_single_source(100, 0.0), Error);
  EXPECT_THROW(mteps_exact(1000, 1000000, -1.0), Error);
}

TEST(Footprint, Table4CapacityScalingPreservesTheCrossover) {
  // The rule used by bench_table4: capacity scaled by m_scaled / m_paper
  // must keep TurboBC under and gunrock over, for every Table 4 workload.
  struct PaperScale {
    vidx_t n;
    eidx_t m;
  };
  const PaperScale paper[4] = {{214000000, 465000000},
                               {42000000, 1151000000},
                               {62000000, 1469000000},
                               {51000000, 1950000000}};
  const std::uint64_t cap = 12196ull * 1024 * 1024;
  for (const auto& p : paper) {
    EXPECT_TRUE(bc::turbobc_fits(p.n, p.m, cap));
    EXPECT_FALSE(bc::gunrock_fits(p.n, p.m, cap));
  }
}

TEST(CrossImplementation, FiveWayAgreementOnMixedGraphs) {
  // TurboBC (3 variants) x sequential-LA x gunrock x ligra x Brandes on a
  // directed and an undirected graph — every pair must agree.
  const graph::EdgeList graphs[2] = {
      gen::web_crawl({.n = 400, .out_degree = 6, .copy_p = 0.4,
                      .local_p = 0.8, .window = 40, .seed = 8}),
      gen::kronecker({.scale = 8, .edge_factor = 10, .seed = 9}),
  };
  for (const auto& g : graphs) {
    const vidx_t s = representative_source(g);
    const auto golden = baseline::brandes_delta(g, s);

    for (const auto v : {bc::Variant::kScCooc, bc::Variant::kScCsc,
                         bc::Variant::kVeCsc}) {
      sim::Device device;
      bc::TurboBC turbo(device, g, {.variant = v});
      EXPECT_LT(bc_max_rel_error(turbo.run_single_source(s).bc, golden), 1e-6)
          << bc::to_string(v);
    }
    EXPECT_LT(bc_max_rel_error(
                  baseline::SequentialBcLa(g).run_single_source(s).bc, golden),
              1e-6);
    {
      sim::Device device;
      baseline::GunrockLikeBc gr(device, g);
      EXPECT_LT(bc_max_rel_error(gr.run_single_source(s).bc, golden), 1e-6);
    }
    EXPECT_LT(bc_max_rel_error(
                  baseline::LigraLikeBc(g).run_single_source(s).bc, golden),
              1e-6);
  }
}

}  // namespace
}  // namespace turbobc::bench
