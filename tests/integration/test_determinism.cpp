// Host-parallel determinism suite: for representative graphs (mycielski,
// kronecker, road, directed Erdos-Renyi) and all three TurboBC variants,
// `--threads 1` and `--threads 8` must produce bit-identical BC vectors,
// kernel aggregates, modeled seconds, launch-record streams and peak-memory
// accounting. These are exact EXPECT_EQ comparisons on doubles — the whole
// point of the deferred-add / fixed-order-merge design is that no tolerance
// is needed.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "graph/edge_list.hpp"

namespace turbobc {
namespace {

struct PoolGuard {
  ~PoolGuard() { sim::ExecutorPool::instance().set_threads(1); }
};

/// Everything a run produces that the determinism contract covers.
struct RunOutput {
  bc::BcResult result;
  std::map<std::string, sim::KernelAggregate, std::less<>> aggregates;
  std::vector<sim::LaunchRecord> records;
};

RunOutput run_bc(const graph::EdgeList& g, bc::BcOptions options,
                 const std::vector<vidx_t>& sources, unsigned threads) {
  sim::ExecutorPool::instance().set_threads(threads);
  sim::Device dev;
  bc::TurboBC algo(dev, g, options);
  RunOutput out;
  out.result = algo.run_sources(sources);
  out.aggregates = dev.kernel_aggregates();
  out.records = dev.launches();
  return out;
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  // BC vectors: exact double equality, element by element.
  ASSERT_EQ(a.result.bc.size(), b.result.bc.size());
  for (std::size_t i = 0; i < a.result.bc.size(); ++i) {
    ASSERT_EQ(a.result.bc[i], b.result.bc[i]) << "bc[" << i << "]";
  }
  ASSERT_EQ(a.result.edge_bc.size(), b.result.edge_bc.size());
  for (std::size_t i = 0; i < a.result.edge_bc.size(); ++i) {
    ASSERT_EQ(a.result.edge_bc[i], b.result.edge_bc[i]) << "edge_bc[" << i
                                                        << "]";
  }

  // Modeled time and memory accounting.
  EXPECT_EQ(a.result.device_seconds, b.result.device_seconds);
  EXPECT_EQ(a.result.peak_device_bytes, b.result.peak_device_bytes);
  EXPECT_EQ(a.result.sources, b.result.sources);
  EXPECT_EQ(a.result.last_source.bfs_depth, b.result.last_source.bfs_depth);
  EXPECT_EQ(a.result.last_source.reached, b.result.last_source.reached);

  // Per-kernel aggregates: same names, same counters, same times.
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  auto ita = a.aggregates.begin();
  auto itb = b.aggregates.begin();
  for (; ita != a.aggregates.end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_EQ(ita->second.launches, itb->second.launches) << ita->first;
    EXPECT_EQ(ita->second.load_transactions, itb->second.load_transactions)
        << ita->first;
    EXPECT_EQ(ita->second.store_transactions, itb->second.store_transactions)
        << ita->first;
    EXPECT_EQ(ita->second.l2_hit_transactions, itb->second.l2_hit_transactions)
        << ita->first;
    EXPECT_EQ(ita->second.dram_transactions, itb->second.dram_transactions)
        << ita->first;
    EXPECT_EQ(ita->second.time_s, itb->second.time_s) << ita->first;
  }

  // The full launch-record stream, in order.
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const sim::LaunchRecord& ra = a.records[i];
    const sim::LaunchRecord& rb = b.records[i];
    ASSERT_EQ(ra.kernel, rb.kernel) << "record " << i;
    ASSERT_EQ(ra.warps, rb.warps) << ra.kernel << " #" << i;
    ASSERT_EQ(ra.issue_slots, rb.issue_slots) << ra.kernel << " #" << i;
    ASSERT_EQ(ra.max_warp_slots, rb.max_warp_slots) << ra.kernel << " #" << i;
    ASSERT_EQ(ra.load_requests, rb.load_requests) << ra.kernel << " #" << i;
    ASSERT_EQ(ra.store_requests, rb.store_requests) << ra.kernel << " #" << i;
    ASSERT_EQ(ra.atomic_requests, rb.atomic_requests) << ra.kernel << " #" << i;
    ASSERT_EQ(ra.atomic_float_requests, rb.atomic_float_requests)
        << ra.kernel << " #" << i;
    ASSERT_EQ(ra.load_transactions, rb.load_transactions)
        << ra.kernel << " #" << i;
    ASSERT_EQ(ra.store_transactions, rb.store_transactions)
        << ra.kernel << " #" << i;
    ASSERT_EQ(ra.l2_hit_transactions, rb.l2_hit_transactions)
        << ra.kernel << " #" << i;
    ASSERT_EQ(ra.dram_transactions, rb.dram_transactions)
        << ra.kernel << " #" << i;
    ASSERT_EQ(ra.time_s, rb.time_s) << ra.kernel << " #" << i;
  }
}

/// `count` sources spread evenly over [0, n).
std::vector<vidx_t> spread_sources(vidx_t n, vidx_t count) {
  std::vector<vidx_t> sources;
  for (vidx_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vidx_t>(
        static_cast<std::uint64_t>(i) * n / count));
  }
  return sources;
}

void check_graph(const graph::EdgeList& g, vidx_t num_sources) {
  PoolGuard guard;
  const auto sources = spread_sources(g.num_vertices(), num_sources);
  for (const bc::Variant variant :
       {bc::Variant::kScCsc, bc::Variant::kScCooc, bc::Variant::kVeCsc}) {
    SCOPED_TRACE(std::string(bc::to_string(variant)));
    bc::BcOptions options;
    options.variant = variant;
    const RunOutput serial = run_bc(g, options, sources, 1);
    const RunOutput parallel = run_bc(g, options, sources, 8);
    expect_identical(serial, parallel);
  }
}

// The graphs are sized so the parallel engine actually engages (the scalar
// launchers only go parallel at >= 64 warps, i.e. >= 2048 threads): either
// n >= 2048 (vertex-parallel kernels), m >= 2048 (edge-parallel scCOOC
// kernels) or n >= 64 warps for veCSC.

TEST(Determinism, Mycielski) {
  // n = 1535, m ~ 127k arcs: edge-parallel and warp-per-vertex kernels run
  // on the parallel engine; vertex-parallel kernels stay serial — the
  // contract must hold for that mix too.
  check_graph(gen::mycielski(11), 6);
}

TEST(Determinism, Kronecker) {
  gen::KroneckerParams params;
  params.scale = 11;  // n = 2048: every kernel family goes parallel
  params.edge_factor = 8;
  params.seed = 3;
  check_graph(gen::kronecker(params), 8);
}

TEST(Determinism, RoadNetwork) {
  gen::RoadParams params;
  params.grid_rows = 14;
  params.grid_cols = 14;
  params.subdivisions = 8;  // deep BFS: hundreds of levels per source
  params.seed = 5;
  check_graph(gen::road_network(params), 3);
}

TEST(Determinism, DirectedErdosRenyi) {
  gen::ErdosRenyiParams params;
  params.n = 2500;
  params.arcs = 12500;
  params.directed = true;
  params.seed = 7;
  check_graph(gen::erdos_renyi(params), 6);
}

TEST(Determinism, EdgeBcVectors) {
  PoolGuard guard;
  gen::KroneckerParams params;
  params.scale = 11;
  params.edge_factor = 8;
  params.seed = 9;
  const graph::EdgeList g = gen::kronecker(params);
  bc::BcOptions options;
  options.variant = bc::Variant::kScCsc;
  options.edge_bc = true;
  const auto sources = spread_sources(g.num_vertices(), 4);
  const RunOutput serial = run_bc(g, options, sources, 1);
  const RunOutput parallel = run_bc(g, options, sources, 8);
  ASSERT_FALSE(serial.result.edge_bc.empty());
  expect_identical(serial, parallel);
}

TEST(Determinism, SingleSourceLaunchStream) {
  // Single-source runs stay on the main device (callers inspect its launch
  // records in place); with n = 2048 the launches themselves run on the
  // parallel engine, so this checks the sharded launcher's record stream
  // against serial execution directly.
  PoolGuard guard;
  gen::KroneckerParams params;
  params.scale = 11;
  params.edge_factor = 8;
  params.seed = 11;
  const graph::EdgeList g = gen::kronecker(params);
  for (const bc::Variant variant :
       {bc::Variant::kScCsc, bc::Variant::kScCooc, bc::Variant::kVeCsc}) {
    SCOPED_TRACE(std::string(bc::to_string(variant)));
    bc::BcOptions options;
    options.variant = variant;
    const vidx_t source = g.num_vertices() / 2;
    const auto run_one = [&](unsigned threads) {
      sim::ExecutorPool::instance().set_threads(threads);
      sim::Device dev;
      bc::TurboBC algo(dev, g, options);
      RunOutput out;
      out.result = algo.run_single_source(source);
      out.aggregates = dev.kernel_aggregates();
      out.records = dev.launches();
      return out;
    };
    const RunOutput serial = run_one(1);
    const RunOutput parallel = run_one(8);
    ASSERT_FALSE(serial.records.empty());
    expect_identical(serial, parallel);
  }
}

/// Widths other than 1 and 8 must land on the same results too (chunk
/// boundaries move, the merge order must not).
TEST(Determinism, IntermediateWidths) {
  PoolGuard guard;
  gen::ErdosRenyiParams params;
  params.n = 2048;
  params.arcs = 10000;
  params.directed = true;
  params.seed = 13;
  const graph::EdgeList g = gen::erdos_renyi(params);
  bc::BcOptions options;
  options.variant = bc::Variant::kScCsc;
  const auto sources = spread_sources(g.num_vertices(), 5);
  const RunOutput base = run_bc(g, options, sources, 1);
  for (const unsigned width : {2u, 3u, 5u}) {
    SCOPED_TRACE("width " + std::to_string(width));
    expect_identical(base, run_bc(g, options, sources, width));
  }
}

}  // namespace
}  // namespace turbobc
