// Property tests for the delta-varint CSC codec (src/storage/): exact
// round-trip over every generator family, offset monotonicity, and the
// degenerate shapes (empty, single vertex, self-loops, duplicates).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/csc.hpp"
#include "graph/edge_list.hpp"
#include "qa/fuzz_case.hpp"
#include "storage/compressed_csc.hpp"

namespace turbobc::storage {
namespace {

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint32_t values[] = {0u,     1u,      127u,       128u,
                                  16383u, 16384u,  2097151u,   2097152u,
                                  268435455u, 268435456u, 4294967295u};
  std::vector<std::uint8_t> bytes;
  for (const std::uint32_t v : values) varint_append(bytes, v);
  std::size_t pos = 0;
  for (const std::uint32_t v : values) {
    EXPECT_EQ(varint_read(bytes.data(), pos), v);
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(Varint, EncodesSevenBitsPerByte) {
  std::vector<std::uint8_t> bytes;
  varint_append(bytes, 127u);
  EXPECT_EQ(bytes.size(), 1u);
  varint_append(bytes, 128u);
  EXPECT_EQ(bytes.size(), 3u);  // 128 takes two bytes
  varint_append(bytes, 4294967295u);
  EXPECT_EQ(bytes.size(), 8u);  // 2^32 - 1 takes five
}

/// Structural invariants every encode must satisfy, independent of the
/// round-trip: offsets sized n + 1, both arrays monotone, col_ptr equal to
/// the CSC's, byte extents consistent with the stream.
void check_shape(const CompressedCsc& c, const graph::CscGraph& g) {
  const auto n = static_cast<std::size_t>(c.n);
  ASSERT_EQ(c.col_ptr.size(), n + 1);
  ASSERT_EQ(c.byte_off.size(), n + 1);
  EXPECT_EQ(c.byte_off.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(c.byte_off.back()), c.bytes.size());
  EXPECT_EQ(static_cast<eidx_t>(c.col_ptr.back()), c.m);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_LE(c.col_ptr[v], c.col_ptr[v + 1]);
    EXPECT_LE(c.byte_off[v], c.byte_off[v + 1]);
    EXPECT_EQ(static_cast<eidx_t>(c.col_ptr[v]), g.col_ptr()[v]);
    const auto deg = c.col_ptr[v + 1] - c.col_ptr[v];
    const auto span = c.byte_off[v + 1] - c.byte_off[v];
    if (c.raw_column(static_cast<vidx_t>(v))) {
      // Raw columns are exactly one LE word per row, and the fallback only
      // fires on hub columns whose varint form was sparse.
      EXPECT_EQ(static_cast<std::size_t>(span), 4u * deg);
      EXPECT_GE(static_cast<std::size_t>(deg), kRawColumnDegree);
    } else {
      // A column's varints cost at least one byte per row and at most five.
      EXPECT_GE(span, deg);
      EXPECT_LE(span, 5 * deg);
    }
  }
  ASSERT_EQ(c.fmt.size(), fmt_words(c.n));
  EXPECT_EQ(c.model_bytes(),
            2ull * (static_cast<std::uint64_t>(c.n) + 1) * 4ull +
                4ull * c.fmt.size() + c.bytes.size());
}

/// Every generator family x 32 seeds: encode must round-trip the canonical
/// CSC byte for byte. This is the contract the compressed kernels, the
/// streaming engine, and the chunked loader all build on.
TEST(CodecProperty, RoundTripsEveryFamily) {
  for (const qa::Family family : qa::kGeneratorFamilies) {
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      qa::FuzzCase c;
      c.family = family;
      c.seed = seed;
      c.size_class = seed % 2 ? 1 : 0;  // alternate tiny / small shapes
      graph::EdgeList el = qa::build_graph(c);
      el.canonicalize();
      const auto csc = graph::CscGraph::from_edges(el);
      const CompressedCsc packed = encode_csc(csc);
      EXPECT_EQ(packed.n, csc.num_vertices());
      EXPECT_EQ(packed.m, csc.num_arcs());
      EXPECT_EQ(packed.directed, csc.directed());
      check_shape(packed, csc);
      EXPECT_TRUE(round_trips(packed, csc))
          << "family " << qa::to_string(family) << " seed " << seed;
    }
  }
}

TEST(Codec, EmptyGraph) {
  const auto csc = graph::CscGraph::from_edges(graph::EdgeList{});
  const CompressedCsc c = encode_csc(csc);
  EXPECT_EQ(c.n, 0);
  EXPECT_EQ(c.m, 0);
  EXPECT_TRUE(c.bytes.empty());
  EXPECT_EQ(c.model_bytes(), 8u);  // the two one-entry offset arrays
  EXPECT_TRUE(round_trips(c, csc));
}

TEST(Codec, SingleVertexNoArcs) {
  graph::EdgeList el(1, /*directed=*/true);
  const auto csc = graph::CscGraph::from_edges(el);
  const CompressedCsc c = encode_csc(csc);
  EXPECT_EQ(c.n, 1);
  EXPECT_EQ(c.m, 0);
  EXPECT_TRUE(c.bytes.empty());
  EXPECT_TRUE(round_trips(c, csc));
}

TEST(Codec, SelfLoopsAndDuplicatesVanishBeforeEncoding) {
  graph::EdgeList el(4, /*directed=*/true);
  el.add_edge(0, 1);
  el.add_edge(0, 1);  // duplicate
  el.add_edge(1, 1);  // self-loop
  el.add_edge(2, 1);
  el.add_edge(3, 3);  // self-loop
  const auto csc = graph::CscGraph::from_edges(el);  // canonicalizes
  const CompressedCsc c = encode_csc(csc);
  EXPECT_EQ(c.m, 2);
  EXPECT_TRUE(round_trips(c, csc));
  EXPECT_EQ(decode_column(c, 1), (std::vector<vidx_t>{0, 2}));
  EXPECT_TRUE(decode_column(c, 0).empty());
}

TEST(Codec, DecodeColumnReproducesGaps) {
  // Column with rows {3, 4, 200}: first varint is the absolute row, the
  // rest are gaps — 3 and 1 fit one byte, the 196 gap takes two.
  graph::EdgeList el(201, /*directed=*/true);
  el.add_edge(3, 0);
  el.add_edge(4, 0);
  el.add_edge(200, 0);
  const auto csc = graph::CscGraph::from_edges(el);
  const CompressedCsc c = encode_csc(csc);
  EXPECT_EQ(c.byte_off[1] - c.byte_off[0], 4);
  EXPECT_EQ(decode_column(c, 0), (std::vector<vidx_t>{3, 4, 200}));
}

TEST(Codec, RawFallbackOnSparseHubColumn) {
  // A hub column whose in-neighbours are spread across a wide id range:
  // every gap needs two varint bytes (2 bytes/arc > the 1.5 break-even), so
  // the column is stored raw — one 4-byte word per row.
  const std::size_t deg = kRawColumnDegree + 8;
  graph::EdgeList el(static_cast<vidx_t>(deg * 1000), /*directed=*/true);
  for (std::size_t k = 0; k < deg; ++k) {
    el.add_edge(static_cast<vidx_t>(k * 997 + 1), 0);
  }
  const auto csc = graph::CscGraph::from_edges(el);
  const CompressedCsc c = encode_csc(csc);
  EXPECT_TRUE(c.raw_column(0));
  EXPECT_EQ(static_cast<std::size_t>(c.byte_off[1]), 4u * deg);
  EXPECT_TRUE(round_trips(c, csc));
}

TEST(Codec, DenseHubColumnStaysVarint) {
  // Same degree but consecutive rows: one varint byte per arc is already
  // denser than raw words, so the hub stays delta-varint.
  const std::size_t deg = kRawColumnDegree + 8;
  graph::EdgeList el(static_cast<vidx_t>(deg + 1), /*directed=*/true);
  for (std::size_t k = 0; k < deg; ++k) {
    el.add_edge(static_cast<vidx_t>(k + 1), 0);
  }
  const auto csc = graph::CscGraph::from_edges(el);
  const CompressedCsc c = encode_csc(csc);
  EXPECT_FALSE(c.raw_column(0));
  EXPECT_EQ(static_cast<std::size_t>(c.byte_off[1]), deg);  // 1 byte/arc
  EXPECT_TRUE(round_trips(c, csc));
}

TEST(Codec, ShortColumnNeverGoesRaw) {
  // Below the degree floor even maximally sparse columns stay varint: the
  // decode cost is amortized over too few arcs to justify stream growth.
  graph::EdgeList el(1u << 20, /*directed=*/true);
  for (std::size_t k = 0; k < kRawColumnDegree - 1; ++k) {
    el.add_edge(static_cast<vidx_t>(k * 30000 + 7), 0);
  }
  const CompressedCsc c = encode_csc(graph::CscGraph::from_edges(el));
  EXPECT_FALSE(c.raw_column(0));
}

TEST(Codec, CompressionWinsOnDenseColumns) {
  // Watts-Strogatz ring: every column gathers near-neighbour rows, so gaps
  // are small and most varints take one byte instead of a 4-byte word.
  qa::FuzzCase c;
  c.family = qa::Family::kSmallWorld;
  c.seed = 13;
  c.size_class = 1;
  graph::EdgeList el = qa::build_graph(c);
  el.canonicalize();
  const CompressedCsc packed = encode_csc(graph::CscGraph::from_edges(el));
  EXPECT_GT(packed.compression_ratio(), 1.0);
}

}  // namespace
}  // namespace turbobc::storage
