// StreamingTurboBC (src/storage/streaming_bc.*): bit-identity against the
// resident compressed engine under eviction pressure, the fetch-free
// small-graph fast path, the PCIe byte ledger, and the out-of-core
// crossing — a device too small for the resident engine completes streamed.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "graph/csc.hpp"
#include "graph/edge_list.hpp"
#include "qa/fuzz_case.hpp"
#include "storage/compressed_csc.hpp"
#include "storage/streaming_bc.hpp"

namespace turbobc::storage {
namespace {

graph::EdgeList family_graph(qa::Family family, std::uint64_t seed,
                             int size_class) {
  qa::FuzzCase c;
  c.family = family;
  c.seed = seed;
  c.size_class = size_class;
  graph::EdgeList el = qa::build_graph(c);
  el.canonicalize();
  return el;
}

bc::BcResult resident_compressed(const graph::EdgeList& el,
                                 const std::vector<vidx_t>& sources) {
  sim::Device dev;
  dev.set_keep_launch_records(false);
  bc::TurboBC algo(dev, el, {.compress = true});
  return algo.run_sources(sources);
}

TEST(Streaming, EvictionWindowMatchesResidentBitForBit) {
  for (const qa::Family family :
       {qa::Family::kSmallWorld, qa::Family::kLocalDigraph}) {
    const graph::EdgeList el = family_graph(family, 21, 1);
    const CompressedCsc packed =
        encode_csc(graph::CscGraph::from_edges(el));
    std::vector<vidx_t> sources{0, el.num_vertices() / 2,
                                el.num_vertices() - 1};
    const bc::BcResult ref = resident_compressed(el, sources);

    sim::Device dev;
    dev.set_keep_launch_records(false);
    StreamingTurboBC streamed(dev, packed, {.num_shards = 5, .window = 2});
    const bc::BcResult got = streamed.run_sources(sources);
    EXPECT_EQ(got.bc, ref.bc);  // bitwise, not tolerance
    EXPECT_FALSE(streamed.fetch_free());
    // A 2-shard window over 5 shards re-fetches on every sweep.
    EXPECT_GT(streamed.ledger().evictions, 0u);
    EXPECT_GT(streamed.ledger().refetch_bytes, 0u);
    EXPECT_GT(streamed.ledger().upload_bytes,
              streamed.ledger().refetch_bytes);
  }
}

TEST(Streaming, ExactMatchesResidentOnDirectedScatter) {
  const graph::EdgeList el = family_graph(qa::Family::kErdosRenyi, 9, 0);
  ASSERT_TRUE(el.directed());  // exercises the atomic-scatter backward path
  const CompressedCsc packed = encode_csc(graph::CscGraph::from_edges(el));
  std::vector<vidx_t> all(static_cast<std::size_t>(el.num_vertices()));
  for (vidx_t v = 0; v < el.num_vertices(); ++v) {
    all[static_cast<std::size_t>(v)] = v;
  }
  const bc::BcResult ref = resident_compressed(el, all);

  sim::Device dev;
  dev.set_keep_launch_records(false);
  StreamingTurboBC streamed(dev, packed, {.num_shards = 4, .window = 1});
  EXPECT_EQ(streamed.run_exact().bc, ref.bc);
}

/// The small-graph fast path: window >= shards degrades to the resident
/// engine — every shard uploads exactly once, nothing is ever evicted or
/// re-fetched, and the ledger proves it.
TEST(Streaming, FetchFreeFastPathUploadsEachShardOnce) {
  const graph::EdgeList el = family_graph(qa::Family::kGrid, 15, 1);
  const CompressedCsc packed = encode_csc(graph::CscGraph::from_edges(el));
  std::vector<vidx_t> sources{0, el.num_vertices() - 1};
  const bc::BcResult ref = resident_compressed(el, sources);

  sim::Device dev;
  dev.set_keep_launch_records(false);
  StreamingTurboBC streamed(dev, packed, {.num_shards = 3, .window = 8});
  EXPECT_TRUE(streamed.fetch_free());
  const bc::BcResult got = streamed.run_sources(sources);
  EXPECT_EQ(got.bc, ref.bc);
  const StreamingLedger& ledger = streamed.ledger();
  EXPECT_EQ(ledger.shard_uploads,
            static_cast<std::uint64_t>(streamed.num_shards()));
  EXPECT_EQ(ledger.refetch_bytes, 0u);
  EXPECT_EQ(ledger.evictions, 0u);
  EXPECT_GT(ledger.upload_bytes, 0u);
}

TEST(Streaming, SingleVertexAndSingleShard) {
  graph::EdgeList el(2, /*directed=*/false);
  el.add_edge(0, 1);
  el.symmetrize();
  const CompressedCsc packed = encode_csc(graph::CscGraph::from_edges(el));
  sim::Device dev;
  StreamingTurboBC streamed(dev, packed, {.num_shards = 1, .window = 1});
  EXPECT_TRUE(streamed.fetch_free());
  const bc::BcResult r = streamed.run_exact();
  EXPECT_EQ(r.bc, (std::vector<bc_t>{0.0, 0.0}));
}

TEST(Streaming, RejectsEmptyGraphAndBadOptions) {
  const CompressedCsc empty =
      encode_csc(graph::CscGraph::from_edges(graph::EdgeList{}));
  sim::Device dev;
  EXPECT_THROW(StreamingTurboBC(dev, empty, {}), Error);

  graph::EdgeList el(3, true);
  el.add_edge(0, 1);
  const CompressedCsc packed = encode_csc(graph::CscGraph::from_edges(el));
  EXPECT_THROW(StreamingTurboBC(dev, packed, {.num_shards = 0}), Error);
  EXPECT_THROW(
      StreamingTurboBC(dev, packed, {.num_shards = 2, .window = 0}), Error);
}

/// The crossing the subsystem exists for: on a device sized between the
/// streamed peak and the resident peak, the resident engine dies with
/// DeviceOutOfMemory while the streamed engine completes — with the same
/// BC vector it produces on an unconstrained device.
TEST(Streaming, CompletesWhereResidentEngineOoms) {
  const graph::EdgeList el = family_graph(qa::Family::kSmallWorld, 29, 2);
  const CompressedCsc packed = encode_csc(graph::CscGraph::from_edges(el));
  const std::vector<vidx_t> sources{0, el.num_vertices() / 3};

  // Measure both peaks unconstrained.
  const bc::BcResult resident = resident_compressed(el, sources);
  bc::BcResult streamed_ref;
  {
    sim::Device dev;
    dev.set_keep_launch_records(false);
    StreamingTurboBC streamed(dev, packed, {.num_shards = 8, .window = 1});
    streamed_ref = streamed.run_sources(sources);
  }
  ASSERT_LT(streamed_ref.peak_device_bytes, resident.peak_device_bytes);

  // A device that fits the streamed image but not the resident one.
  sim::DeviceProps small = sim::DeviceProps::titan_xp();
  small.global_mem_bytes = (streamed_ref.peak_device_bytes +
                            resident.peak_device_bytes) / 2;

  EXPECT_THROW(
      {
        sim::Device dev(small);
        dev.set_keep_launch_records(false);
        bc::TurboBC algo(dev, el, {.compress = true});
        algo.run_sources(sources);
      },
      DeviceOutOfMemory);

  sim::Device dev(small);
  dev.set_keep_launch_records(false);
  StreamingTurboBC streamed(dev, packed, {.num_shards = 8, .window = 1});
  const bc::BcResult got = streamed.run_sources(sources);
  EXPECT_EQ(got.bc, streamed_ref.bc);
  EXPECT_EQ(got.bc, resident.bc);
}

}  // namespace
}  // namespace turbobc::storage
