// LruWindow eviction-order pins plus a ledger cross-check against the
// streaming engine: the policy must pick exactly the least-recently-used
// resident slot, and StreamingTurboBC's eviction count must be the pure
// consequence of its ascending-shard access pattern replayed through the
// same policy.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "graph/csc.hpp"
#include "storage/compressed_csc.hpp"
#include "storage/lru_window.hpp"
#include "storage/streaming_bc.hpp"

namespace turbobc::storage {
namespace {

struct Event {
  std::size_t key;
  bool hit;
  bool evicted;
  std::size_t victim;  // checked only when evicted
};

void replay(LruWindow& lru, const std::vector<Event>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    const LruWindow::Touch t = lru.touch(e.key);
    EXPECT_EQ(t.hit, e.hit) << "step " << i << " key " << e.key;
    EXPECT_EQ(t.evicted, e.evicted) << "step " << i << " key " << e.key;
    if (e.evicted) {
      EXPECT_EQ(t.victim, e.victim) << "step " << i << " key " << e.key;
    }
  }
}

TEST(LruWindow, KnownSequencePicksLeastRecentlyUsedVictims) {
  LruWindow lru(5, 2);
  // Touch order annotates recency; victims must always be the stalest
  // resident slot, never the slot being fetched.
  replay(lru, {
                  {0, false, false, 0},  // miss, room
                  {1, false, false, 0},  // miss, room -> {0, 1} resident
                  {0, true, false, 0},   // hit bumps 0 over 1
                  {2, false, true, 1},   // full: evicts 1 (LRU), not 0
                  {1, false, true, 0},   // now 0 is stale -> evicted
                  {1, true, false, 0},   // hot hit
                  {0, false, true, 2},   // 2 older than 1 -> evicted
                  {1, true, false, 0},
              });
  EXPECT_EQ(lru.resident_count(), 2u);
  EXPECT_TRUE(lru.resident(0));
  EXPECT_TRUE(lru.resident(1));
  EXPECT_FALSE(lru.resident(2));
}

TEST(LruWindow, CyclicScanEvictsInSlotOrder) {
  // Ascending cyclic access (the streaming engine's sweep pattern) is LRU's
  // worst case: after warmup every touch misses and victims cycle in slot
  // order too.
  LruWindow lru(4, 2);
  replay(lru, {
                  {0, false, false, 0},
                  {1, false, false, 0},
                  {2, false, true, 0},
                  {3, false, true, 1},
                  {0, false, true, 2},
                  {1, false, true, 3},
                  {2, false, true, 0},
                  {3, false, true, 1},
              });
}

TEST(LruWindow, CapacityOneAlternation) {
  LruWindow lru(3, 1);
  replay(lru, {
                  {2, false, false, 0},
                  {2, true, false, 0},
                  {0, false, true, 2},
                  {2, false, true, 0},
              });
  EXPECT_EQ(lru.resident_count(), 1u);
}

TEST(LruWindow, RejectsZeroCapacity) {
  EXPECT_THROW(LruWindow(4, 0), InvalidArgument);
}

// Differential check: random touch streams against a straightforward
// reference (map slot -> last-use tick), for several (slots, capacity)
// shapes.
TEST(LruWindow, MatchesReferenceModelOnRandomStreams) {
  for (const auto [slots, cap] : {std::pair<std::size_t, std::size_t>{6, 3},
                                  {8, 1},
                                  {5, 4},
                                  {3, 3}}) {
    LruWindow lru(slots, cap);
    std::map<std::size_t, std::uint64_t> ref;  // resident -> last tick
    std::uint64_t tick = 0;
    Xoshiro256 rng(0x5eedull + slots * 16 + cap);
    for (int step = 0; step < 2000; ++step) {
      const auto k = static_cast<std::size_t>(rng.uniform(slots));
      ++tick;
      const bool want_hit = ref.count(k) > 0;
      bool want_evicted = false;
      std::size_t want_victim = 0;
      if (!want_hit && ref.size() >= cap) {
        want_evicted = true;
        auto victim = ref.begin();
        for (auto it = ref.begin(); it != ref.end(); ++it) {
          if (it->second < victim->second) victim = it;
        }
        want_victim = victim->first;
        ref.erase(victim);
      }
      ref[k] = tick;

      const LruWindow::Touch t = lru.touch(k);
      ASSERT_EQ(t.hit, want_hit) << "step " << step;
      ASSERT_EQ(t.evicted, want_evicted) << "step " << step;
      if (want_evicted) ASSERT_EQ(t.victim, want_victim) << "step " << step;
      ASSERT_EQ(lru.resident_count(), ref.size());
    }
  }
}

// StreamingTurboBC's ledger must be the pure consequence of the cyclic
// sweep pattern under this policy: with window W < S shards, every shard
// touch past the first W misses (cyclic scan), so uploads accumulate one
// per touch and evictions lag uploads by exactly the W shards still
// resident at the end.
TEST(LruWindow, StreamingLedgerEvictionsMatchPolicyReplay) {
  const auto g = gen::small_world({.n = 120, .k = 4, .rewire_p = 0.1,
                                   .seed = 7});
  const CompressedCsc cgraph = encode_csc(graph::CscGraph::from_edges(g));
  sim::Device device;
  StreamingTurboBC engine(device, cgraph, {.num_shards = 5, .window = 2});
  ASSERT_FALSE(engine.fetch_free());
  engine.run_single_source(3);

  const StreamingLedger& led = engine.ledger();
  EXPECT_GT(led.evictions, 0u);
  EXPECT_EQ(led.evictions + 2, led.shard_uploads);  // W = 2 still resident
  EXPECT_GT(led.refetch_bytes, 0u);
}

}  // namespace
}  // namespace turbobc::storage
