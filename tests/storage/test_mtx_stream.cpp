// Chunked Matrix Market ingest (src/storage/mtx_stream.*): byte-identical
// results to the in-memory reader + codec on well-formed input, and the
// SAME ParseError message and line number on every malformed shape —
// including lines truncated at a chunk boundary.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "graph/csc.hpp"
#include "graph/edge_list.hpp"
#include "graph/mtx_io.hpp"
#include "qa/fuzz_case.hpp"
#include "storage/compressed_csc.hpp"
#include "storage/mtx_stream.hpp"

namespace turbobc::storage {
namespace {

/// The equivalence contract: chunked ingest == in-memory read + encode,
/// byte for byte, under the given chunking/spill options.
void expect_equivalent(const std::string& text,
                       const ChunkedMtxOptions& options = {}) {
  std::istringstream ref_in(text);
  const CompressedCsc expected =
      encode_csc(graph::CscGraph::from_edges(graph::read_matrix_market(ref_in)));
  std::istringstream in(text);
  const CompressedCsc actual = read_matrix_market_compressed(in, options);
  EXPECT_EQ(actual.n, expected.n);
  EXPECT_EQ(actual.m, expected.m);
  EXPECT_EQ(actual.directed, expected.directed);
  EXPECT_EQ(actual.col_ptr, expected.col_ptr);
  EXPECT_EQ(actual.byte_off, expected.byte_off);
  EXPECT_EQ(actual.bytes, expected.bytes);
}

TEST(MtxStream, MatchesInMemoryReaderOnPatternGeneral) {
  expect_equivalent(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "4 4 4\n"
      "1 2\n"
      "3 1\n"
      "4 2\n"
      "2 4\n");
}

TEST(MtxStream, MatchesInMemoryReaderOnSymmetric) {
  expect_equivalent(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
}

TEST(MtxStream, DiscardsRealAndIntegerWeights) {
  expect_equivalent(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 2 3.75\n"
      "3 1 -0.5\n");
  expect_equivalent(
      "%%MatrixMarket matrix coordinate integer symmetric\n"
      "3 3 2\n"
      "2 1 7\n"
      "3 1 9\n");
}

TEST(MtxStream, AcceptsCrlfLineEndings) {
  expect_equivalent(
      "%%MatrixMarket matrix coordinate pattern general\r\n"
      "% dos file\r\n"
      "3 3 2\r\n"
      "1 2\r\n"
      "3 1\r\n");
}

TEST(MtxStream, DropsDuplicatesAndSelfLoopsLikeCanonicalize) {
  expect_equivalent(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "4 4 6\n"
      "1 2\n"
      "1 2\n"
      "2 2\n"
      "3 4\n"
      "3 4\n"
      "4 4\n");
}

/// Entry lines straddling every chunk boundary: the minimum 64-byte chunk
/// against a generated graph whose serialized form spans many chunks.
TEST(MtxStream, TinyChunksStraddleLines) {
  qa::FuzzCase c;
  c.family = qa::Family::kGrid;
  c.seed = 15;
  c.size_class = 1;
  graph::EdgeList el = qa::build_graph(c);
  el.canonicalize();
  std::ostringstream out;
  graph::write_matrix_market(out, el);
  expect_equivalent(out.str(), {.chunk_bytes = 1});  // clamped to 64
  expect_equivalent(out.str(), {.chunk_bytes = 64});
  expect_equivalent(out.str(), {.chunk_bytes = 67});  // unaligned boundary
}

/// Small bucket_cols forces multiple spill buckets (on-disk sort path);
/// the result must not depend on the bucket count.
TEST(MtxStream, SpillBucketsMatchSingleBucket) {
  qa::FuzzCase c;
  c.family = qa::Family::kSmallWorld;
  c.seed = 13;
  c.size_class = 1;
  graph::EdgeList el = qa::build_graph(c);
  el.canonicalize();
  std::ostringstream out;
  graph::write_matrix_market(out, el);
  expect_equivalent(out.str(), {.bucket_cols = 1});
  expect_equivalent(out.str(), {.chunk_bytes = 64, .bucket_cols = 7});
}

TEST(MtxStream, ToEdgeListRoundTrips) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "5 5 4\n"
      "2 1\n"
      "3 2\n"
      "5 4\n"
      "5 1\n";
  std::istringstream ref_in(text);
  graph::EdgeList expected = graph::read_matrix_market(ref_in);
  expected.canonicalize();
  std::istringstream in(text);
  graph::EdgeList actual = to_edge_list(read_matrix_market_compressed(in));
  actual.canonicalize();
  EXPECT_EQ(actual.num_vertices(), expected.num_vertices());
  EXPECT_EQ(actual.directed(), expected.directed());
  EXPECT_TRUE(actual.edges() == expected.edges());
}

// ------------------------------------------------------------- hardening
// Every rejection must throw ParseError with the SAME message and 1-based
// line number as graph::read_matrix_market — the taxonomy is shared, so
// the strongest check is direct parity against the in-memory reader.

void expect_error_parity(const std::string& text,
                         const ChunkedMtxOptions& options = {}) {
  std::string ref_what;
  std::size_t ref_line = 0;
  try {
    std::istringstream in(text);
    graph::read_matrix_market(in);
    FAIL() << "reference reader accepted: " << text;
  } catch (const ParseError& e) {
    ref_what = e.what();
    ref_line = e.line_number();
  }
  try {
    std::istringstream in(text);
    read_matrix_market_compressed(in, options);
    FAIL() << "chunked reader accepted: " << text;
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), ref_what);
    EXPECT_EQ(e.line_number(), ref_line);
  }
}

TEST(MtxStreamHardening, EmptyStream) { expect_error_parity(""); }

TEST(MtxStreamHardening, MissingBanner) {
  expect_error_parity("3 3 1\n1 2\n");
}

TEST(MtxStreamHardening, NonMatrixObject) {
  expect_error_parity("%%MatrixMarket vector coordinate pattern general\n");
}

TEST(MtxStreamHardening, ArrayFormat) {
  expect_error_parity("%%MatrixMarket matrix array real general\n");
}

TEST(MtxStreamHardening, ComplexField) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate complex general\n"
      "2 2 1\n"
      "1 2 1.0 0.0\n");
}

TEST(MtxStreamHardening, SkewSymmetric) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern skew-symmetric\n"
      "2 2 1\n"
      "2 1\n");
}

TEST(MtxStreamHardening, BlankSizeLineParity) {
  // mtx_io does NOT skip a blank line where the size line is expected; the
  // chunked reader must reject it with the identical message.
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "\n"
      "3 3 1\n"
      "1 2\n");
}

TEST(MtxStreamHardening, EndsBeforeSizeLine) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% only comments follow\n");
}

TEST(MtxStreamHardening, MalformedSizeLine) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3\n");
}

TEST(MtxStreamHardening, NonSquare) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 1\n"
      "1 2\n");
}

TEST(MtxStreamHardening, NegativeDimensions) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "-3 -3 1\n"
      "1 1\n");
}

TEST(MtxStreamHardening, DimensionOverflow) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "4294967296 4294967296 1\n"
      "1 2\n");
}

TEST(MtxStreamHardening, MalformedEntry) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 2\n"
      "nonsense\n");
}

TEST(MtxStreamHardening, PatternEntryWithTooFewTokens) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1\n"
      "1\n");
}

TEST(MtxStreamHardening, WeightedEntryMissingValue) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "1 2\n");
}

TEST(MtxStreamHardening, EntryOutOfRange) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1\n"
      "4 1\n");
}

TEST(MtxStreamHardening, TruncatedEntryList) {
  expect_error_parity(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 3\n"
      "1 2\n"
      "2 3\n");
}

/// The taxonomy must survive chunking: the same truncated stream, cut so
/// the final (incomplete) line sits exactly at a 64-byte chunk boundary,
/// still reports the reference reader's message and line number.
TEST(MtxStreamHardening, TruncationAtChunkBoundary) {
  std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "100 100 50\n";
  for (int i = 1; i <= 20; ++i) {
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  for (const std::size_t chunk : {std::size_t{64}, std::size_t{65}}) {
    expect_error_parity(text, {.chunk_bytes = chunk});
  }
  // Malformed entry mid-stream under tiny chunks: same parity.
  text += "7 !\n";
  expect_error_parity(text, {.chunk_bytes = 64});
}

TEST(MtxStreamHardening, UnreadableFileThrowsInvalidArgument) {
  EXPECT_THROW(
      read_matrix_market_compressed_file("/nonexistent/turbobc-missing.mtx"),
      InvalidArgument);
}

}  // namespace
}  // namespace turbobc::storage
