// Mutation-hook tests: determinism, count semantics, and — the load-bearing
// property for the fuzzer — preservation of the undirected both-arcs
// invariant under ARBITRARY mutation traces.
#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "generators/mutate.hpp"
#include "generators/random_graphs.hpp"
#include "generators/small_world.hpp"

namespace turbobc::gen {
namespace {

using graph::Edge;
using graph::EdgeList;

/// Every copy of arc (u,v) must be matched by a copy of (v,u).
bool arc_multiset_symmetric(const EdgeList& el) {
  std::map<std::pair<vidx_t, vidx_t>, int> count;
  for (const Edge& e : el.edges()) {
    if (e.u == e.v) continue;  // self-loops are their own mirror
    ++count[{e.u, e.v}];
  }
  for (const auto& [arc, n] : count) {
    const auto rev = count.find({arc.second, arc.first});
    if (rev == count.end() || rev->second != n) return false;
  }
  return true;
}

EdgeList undirected_base(std::uint64_t seed) {
  return erdos_renyi({.n = 12, .arcs = 30, .directed = false, .seed = seed});
}

TEST(Mutate, IsDeterministic) {
  const EdgeList base = undirected_base(1);
  for (const MutationKind kind : kAllMutationKinds) {
    const Mutation m{kind, 99, 4};
    const EdgeList a = apply_mutation(base, m);
    const EdgeList b = apply_mutation(base, m);
    EXPECT_EQ(a.edges(), b.edges()) << to_string(kind);
    EXPECT_EQ(a.num_vertices(), b.num_vertices()) << to_string(kind);
  }
}

TEST(Mutate, AddEdgesGrowsArcCount) {
  const EdgeList base = undirected_base(2);
  const EdgeList out = apply_mutation(base, {MutationKind::kAddEdges, 5, 6});
  EXPECT_GE(out.num_arcs(), base.num_arcs());
  EXPECT_EQ(out.num_vertices(), base.num_vertices());
}

TEST(Mutate, DropEdgesShrinksArcCount) {
  const EdgeList base = undirected_base(3);
  const EdgeList out = apply_mutation(base, {MutationKind::kDropEdges, 5, 4});
  EXPECT_LT(out.num_arcs(), base.num_arcs());
  EXPECT_EQ(out.num_vertices(), base.num_vertices());
}

TEST(Mutate, AddIsolatedGrowsOnlyVertices) {
  const EdgeList base = undirected_base(4);
  const EdgeList out = apply_mutation(base, {MutationKind::kAddIsolated, 0, 3});
  EXPECT_EQ(out.num_vertices(), base.num_vertices() + 3);
  EXPECT_EQ(out.edges(), base.edges());
}

TEST(Mutate, DisconnectedUnionAddsUnreachableComponent) {
  const EdgeList base = undirected_base(5);
  const EdgeList out =
      apply_mutation(base, {MutationKind::kDisconnectedUnion, 7, 4});
  EXPECT_EQ(out.num_vertices(), base.num_vertices() + 4);
  // No arc crosses from the original vertex range into the new component.
  for (const Edge& e : out.edges()) {
    const bool u_old = e.u < base.num_vertices();
    const bool v_old = e.v < base.num_vertices();
    EXPECT_EQ(u_old, v_old) << e.u << "->" << e.v;
  }
}

TEST(Mutate, SelfLoopsAndDuplicatesVanishUnderCanonicalize) {
  EdgeList base = undirected_base(6);
  EdgeList out = apply_mutation(base, {MutationKind::kAddSelfLoops, 8, 5});
  out = apply_mutation(out, {MutationKind::kDuplicateEdges, 9, 5});
  EXPECT_GT(out.num_arcs(), base.num_arcs());
  out.canonicalize();
  base.canonicalize();
  EXPECT_EQ(out.edges(), base.edges());
}

TEST(Mutate, SkewDegreesConcentratesOnAHub) {
  const EdgeList base = undirected_base(7);
  const EdgeList out =
      apply_mutation(base, {MutationKind::kSkewDegrees, 11, 8});
  EXPECT_GE(out.num_arcs(), base.num_arcs());
  EXPECT_TRUE(arc_multiset_symmetric(out));
}

TEST(Mutate, CountSaturatesPastGraphSize) {
  const EdgeList base = undirected_base(8);
  // Dropping far more edges than exist must not throw or underflow.
  const EdgeList out =
      apply_mutation(base, {MutationKind::kDropEdges, 3, 10000});
  EXPECT_GE(out.num_arcs(), 0);
}

TEST(Mutate, EmptyGraphSurvivesEveryKind) {
  const EdgeList empty(0, true);
  for (const MutationKind kind : kAllMutationKinds) {
    const EdgeList out = apply_mutation(empty, {kind, 1, 2});
    SUCCEED() << to_string(kind);
    EXPECT_GE(out.num_vertices(), 0);
  }
}

// The regression the first fuzz run caught: duplicate_edges copying one arc
// of an undirected pair let a later drop_edges strip the only reverse copy,
// leaving an "undirected" graph with asymmetric arcs.
TEST(Mutate, UndirectedInvariantSurvivesDuplicateThenDrop) {
  const EdgeList base = undirected_base(9);
  EdgeList g = apply_mutation(base, {MutationKind::kDuplicateEdges, 1, 6});
  ASSERT_TRUE(arc_multiset_symmetric(g));
  g = apply_mutation(g, {MutationKind::kDropEdges, 2, 8});
  EXPECT_TRUE(arc_multiset_symmetric(g));
  g.canonicalize();
  EXPECT_TRUE(arc_multiset_symmetric(g));
}

TEST(Mutate, UndirectedInvariantSurvivesRandomTraces) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    EdgeList g = small_world({.n = 16, .k = 4, .seed = rng()});
    std::vector<Mutation> trace;
    const int len = static_cast<int>(1 + rng.uniform(6));
    for (int i = 0; i < len; ++i) {
      trace.push_back({kAllMutationKinds[rng.uniform(
                           std::size(kAllMutationKinds))],
                       rng(), static_cast<vidx_t>(1 + rng.uniform(5))});
    }
    const EdgeList mutated = apply_mutations(g, trace);
    ASSERT_TRUE(arc_multiset_symmetric(mutated)) << "trial " << trial;
    EXPECT_FALSE(mutated.directed());
  }
}

}  // namespace
}  // namespace turbobc::gen
