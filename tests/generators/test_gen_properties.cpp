// Property tests: every generator family matches its declared structural
// signature (header-of-file claims: vertex/arc counts, degree shape, BFS
// depth) across 32 seeds — not just the single seed the unit tests pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "generators/generators.hpp"
#include "graph/bfs_probe.hpp"
#include "graph/csc.hpp"
#include "graph/stats.hpp"

namespace turbobc::gen {
namespace {

using graph::EdgeList;

constexpr std::uint64_t kSeeds = 32;

bool is_symmetric(const EdgeList& el) {
  std::set<std::pair<vidx_t, vidx_t>> arcs;
  for (const auto& e : el.edges()) arcs.insert({e.u, e.v});
  return std::all_of(el.edges().begin(), el.edges().end(), [&](const auto& e) {
    return arcs.count({e.v, e.u}) != 0;
  });
}

bool is_canonical(const EdgeList& el) {
  EdgeList copy = el;
  copy.canonicalize();
  return copy.edges() == el.edges();
}

/// Endpoints in range, canonical arc list, and undirected graphs carry both
/// arc directions — the structural contract every family must satisfy.
void expect_well_formed(const EdgeList& el, std::uint64_t seed) {
  for (const auto& e : el.edges()) {
    ASSERT_GE(e.u, 0) << "seed " << seed;
    ASSERT_LT(e.u, el.num_vertices()) << "seed " << seed;
    ASSERT_GE(e.v, 0) << "seed " << seed;
    ASSERT_LT(e.v, el.num_vertices()) << "seed " << seed;
  }
  EXPECT_TRUE(is_canonical(el)) << "seed " << seed;
  if (!el.directed()) EXPECT_TRUE(is_symmetric(el)) << "seed " << seed;
}

vidx_t bfs_height(const EdgeList& el, vidx_t source = 0) {
  return graph::bfs_reference(graph::CscGraph::from_edges(el), source).height;
}

TEST(GenProperties, ErdosRenyi) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = erdos_renyi(
        {.n = 60, .arcs = 240, .directed = seed % 2 == 0, .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_EQ(g.num_vertices(), 60);
    EXPECT_GT(g.num_arcs(), 0);
    // Target arc count before dedup; the canonical graph can only shrink
    // (undirected symmetrization can double, hence the factor).
    EXPECT_LE(g.num_arcs(), 2 * 240);
    const auto again = erdos_renyi(
        {.n = 60, .arcs = 240, .directed = seed % 2 == 0, .seed = seed});
    EXPECT_EQ(g.edges(), again.edges()) << "seed " << seed;
  }
}

TEST(GenProperties, Kronecker) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = kronecker({.scale = 6, .edge_factor = 8, .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_EQ(g.num_vertices(), 64);
    EXPECT_FALSE(g.directed());
    // Scale-free shape: the hub dominates the mean.
    const auto s = graph::degree_stats(g);
    EXPECT_GT(static_cast<double>(s.max), 3.0 * s.mean) << "seed " << seed;
  }
}

TEST(GenProperties, SmallWorld) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g =
        small_world({.n = 64, .k = 6, .rewire_p = 0.1, .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_EQ(g.num_vertices(), 64);
    const auto s = graph::degree_stats(g);
    EXPECT_NEAR(s.mean, 6.0, 1.0) << "seed " << seed;
    EXPECT_LT(s.stddev, 3.0) << "seed " << seed;
  }
}

TEST(GenProperties, Mycielski) {
  // Deterministic family: the parameter axis replaces the seed axis.
  for (int k = 2; k <= 10; ++k) {
    const auto g = mycielski(k);
    expect_well_formed(g, static_cast<std::uint64_t>(k));
    EXPECT_EQ(g.num_vertices(), mycielski_vertices(k)) << k;
    EXPECT_FALSE(g.directed());
    if (k >= 4) {
      // Apex chains keep every BFS shallow.
      EXPECT_LE(bfs_height(g, g.num_vertices() - 1), 3) << k;
    }
  }
}

TEST(GenProperties, TriangulatedGrid) {
  for (vidx_t rows = 2; rows < 10; ++rows) {
    const vidx_t cols = rows + 3;
    const auto g = triangulated_grid(rows, cols);
    expect_well_formed(g, static_cast<std::uint64_t>(rows));
    EXPECT_EQ(g.num_vertices(), rows * cols);
    EXPECT_LE(graph::degree_stats(g).max, 6) << rows;
    const auto r = graph::bfs_reference(
        graph::CscGraph::from_edges(g), 0);
    EXPECT_EQ(r.reached, g.num_vertices()) << rows;  // connected
  }
}

TEST(GenProperties, MarkovLattice) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g =
        markov_lattice({.length = 16, .width = 5, .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_TRUE(g.directed());
    EXPECT_EQ(g.num_vertices(), 16 * 5);
    // The stencil advances one level per hop along the length dimension.
    EXPECT_GE(bfs_height(g), 8) << "seed " << seed;
  }
}

TEST(GenProperties, RoadNetwork) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = road_network({.grid_rows = 4,
                                 .grid_cols = 4,
                                 .keep_p = 0.8,
                                 .subdivisions = 4,
                                 .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_FALSE(g.directed());
    const auto s = graph::degree_stats(g);
    EXPECT_NEAR(s.mean, 2.0, 0.5) << "seed " << seed;  // road signature
    EXPECT_GE(bfs_height(g), 4) << "seed " << seed;    // deep BFS
  }
}

TEST(GenProperties, KmerLike) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = kmer_like(
        {.chains = 6, .chain_len = 10, .branching = 3, .seed = seed});
    expect_well_formed(g, seed);
    const auto s = graph::degree_stats(g);
    EXPECT_LE(s.max, 2 * 3) << "seed " << seed;  // degree <= 2 * branching
    EXPECT_NEAR(s.mean, 2.0, 0.5) << "seed " << seed;
    EXPECT_GE(bfs_height(g), 5) << "seed " << seed;  // chain-deep
  }
}

TEST(GenProperties, PreferentialAttachment) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const bool directed = seed % 2 == 1;
    const auto g = preferential_attachment(
        {.n = 80, .m_attach = 2, .directed = directed, .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_EQ(g.num_vertices(), 80);
    EXPECT_EQ(g.directed(), directed);
    // Rich-get-richer: the biggest hub clears the mean by a wide margin.
    const auto degrees = g.in_degrees();
    const auto max_in = *std::max_element(degrees.begin(), degrees.end());
    EXPECT_GT(max_in, 4) << "seed " << seed;
  }
}

TEST(GenProperties, SuperhubSocial) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = superhub_social({.n = 100,
                                    .out_degree = 6,
                                    .celebrities = 4,
                                    .celebrity_p = 0.3,
                                    .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_TRUE(g.directed());
    EXPECT_EQ(g.num_vertices(), 100);
    // ~30% of all arcs land on 4 celebrities: extreme in-degree skew.
    const auto in = g.in_degrees();
    const auto max_in = *std::max_element(in.begin(), in.end());
    const double mean_in =
        static_cast<double>(g.num_arcs()) / g.num_vertices();
    EXPECT_GT(static_cast<double>(max_in), 3.0 * mean_in) << "seed " << seed;
  }
}

TEST(GenProperties, TrafficTrace) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = traffic_trace({.n = 80, .hubs = 5, .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_EQ(g.num_vertices(), 80);
    // Monitoring-point stars: near-total degree concentration (scf ~ 2).
    const auto s = graph::degree_stats(g);
    EXPECT_GT(static_cast<double>(s.max), 5.0 * s.mean) << "seed " << seed;
  }
}

TEST(GenProperties, WebCrawl) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = web_crawl({.n = 100,
                              .out_degree = 6,
                              .window = 20,
                              .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_TRUE(g.directed());
    EXPECT_EQ(g.num_vertices(), 100);
    const auto s = graph::degree_stats(g);
    EXPECT_NEAR(s.mean, 6.0, 3.0) << "seed " << seed;
  }
}

TEST(GenProperties, RandomLocalDigraph) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const auto g = random_local_digraph({.n = 100,
                                         .mean_out_degree = 4.0,
                                         .max_out_degree = 20,
                                         .window = 10,
                                         .seed = seed});
    expect_well_formed(g, seed);
    EXPECT_TRUE(g.directed());
    EXPECT_EQ(g.num_vertices(), 100);
    // The out-degree cap is a hard contract of the generator.
    const auto out = g.out_degrees();
    EXPECT_LE(*std::max_element(out.begin(), out.end()), 20)
        << "seed " << seed;
    // Window-local targets make the BFS deep relative to n.
    EXPECT_GE(bfs_height(g), 3) << "seed " << seed;
  }
}

}  // namespace
}  // namespace turbobc::gen
