#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "generators/generators.hpp"
#include "graph/bfs_probe.hpp"
#include "graph/csc.hpp"
#include "graph/stats.hpp"

namespace turbobc::gen {
namespace {

using graph::CscGraph;
using graph::EdgeList;

/// Every arc (u,v) has its reverse present.
bool is_symmetric(const EdgeList& el) {
  auto edges = el.edges();
  std::sort(edges.begin(), edges.end(),
            [](const graph::Edge& a, const graph::Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  for (const graph::Edge& e : el.edges()) {
    if (!std::binary_search(edges.begin(), edges.end(),
                            graph::Edge{e.v, e.u},
                            [](const graph::Edge& a, const graph::Edge& b) {
                              return a.u != b.u ? a.u < b.u : a.v < b.v;
                            })) {
      return false;
    }
  }
  return true;
}

bool is_connected_undirected(const EdgeList& el) {
  const auto g = CscGraph::from_edges(el);
  return graph::bfs_reference(g, 0).reached == el.num_vertices();
}

// ---------------------------------------------------------------- mycielski

TEST(Mycielski, VertexCountFollowsClosedForm) {
  for (int k = 2; k <= 12; ++k) {
    EXPECT_EQ(mycielski(k).num_vertices(), mycielski_vertices(k)) << k;
  }
}

TEST(Mycielski, EdgeRecurrenceHolds) {
  // m_{k+1} = 3 m_k + n_k (undirected edges; arcs are 2x).
  eidx_t prev_m = mycielski(4).num_arcs() / 2;
  vidx_t prev_n = mycielski(4).num_vertices();
  for (int k = 5; k <= 11; ++k) {
    const auto g = mycielski(k);
    EXPECT_EQ(g.num_arcs() / 2, 3 * prev_m + prev_n) << k;
    prev_m = g.num_arcs() / 2;
    prev_n = g.num_vertices();
  }
}

TEST(Mycielski, IsSymmetricAndConnected) {
  const auto g = mycielski(8);
  EXPECT_FALSE(g.directed());
  EXPECT_TRUE(is_symmetric(g));
  EXPECT_TRUE(is_connected_undirected(g));
}

TEST(Mycielski, BfsDepthIsThreeFromTheApex) {
  // The paper's Table 3 reports d = 3 for every mycielski graph.
  const auto g = mycielski(9);
  const auto csc = CscGraph::from_edges(g);
  const auto r = graph::bfs_reference(csc, g.num_vertices() - 1);
  EXPECT_LE(r.height, 3);
  EXPECT_GE(r.height, 2);
}

TEST(Mycielski, IsTriangleFree) {
  // Mycielskians preserve triangle-freeness; spot-check a small order by
  // brute force.
  const auto g = mycielski(6);
  const auto csc = CscGraph::from_edges(g);
  const auto n = g.num_vertices();
  std::vector<std::vector<char>> adj(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (const graph::Edge& e : g.edges()) {
    adj[static_cast<std::size_t>(e.u)][static_cast<std::size_t>(e.v)] = 1;
  }
  for (vidx_t a = 0; a < n; ++a) {
    for (vidx_t b = static_cast<vidx_t>(a + 1); b < n; ++b) {
      if (!adj[a][b]) continue;
      for (vidx_t c = static_cast<vidx_t>(b + 1); c < n; ++c) {
        EXPECT_FALSE(adj[a][b] && adj[b][c] && adj[a][c])
            << "triangle " << a << " " << b << " " << c;
      }
    }
  }
}

TEST(Mycielski, RejectsBadOrder) {
  EXPECT_THROW(mycielski(1), InvalidArgument);
  EXPECT_THROW(mycielski(30), InvalidArgument);
}

// ---------------------------------------------------------------- kronecker

TEST(Kronecker, HasPowerOfTwoVerticesAndRequestedDensity) {
  const auto g = kronecker({.scale = 9, .edge_factor = 8, .seed = 1});
  EXPECT_EQ(g.num_vertices(), 512);
  // Symmetrized and deduped: arcs within [edge_factor*n, 2*edge_factor*n].
  EXPECT_GE(g.num_arcs(), 8 * 512 / 2);
  EXPECT_LE(g.num_arcs(), 2 * 8 * 512);
}

TEST(Kronecker, IsDeterministicPerSeed) {
  const auto a = kronecker({.scale = 8, .edge_factor = 8, .seed = 3});
  const auto b = kronecker({.scale = 8, .edge_factor = 8, .seed = 3});
  EXPECT_EQ(a.edges(), b.edges());
  const auto c = kronecker({.scale = 8, .edge_factor = 8, .seed = 4});
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Kronecker, IsHeavyTailed) {
  const auto g = kronecker({.scale = 11, .edge_factor = 16, .seed = 5});
  const auto s = graph::degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max), 10.0 * s.mean);
}

// --------------------------------------------------------------- smallworld

TEST(SmallWorld, MeanDegreeNearK) {
  const auto g = small_world({.n = 2000, .k = 10, .rewire_p = 0.1, .seed = 2});
  const auto s = graph::degree_stats(g);
  EXPECT_NEAR(s.mean, 10.0, 0.5);
  EXPECT_LT(s.stddev, 3.0);
}

TEST(SmallWorld, ZeroRewireIsRingLattice) {
  const auto g = small_world({.n = 100, .k = 4, .rewire_p = 0.0, .seed = 2});
  const auto s = graph::degree_stats(g);
  EXPECT_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SmallWorld, RewiringShrinksDiameter) {
  const auto ring = small_world({.n = 400, .k = 4, .rewire_p = 0.0, .seed = 2});
  const auto sw = small_world({.n = 400, .k = 4, .rewire_p = 0.2, .seed = 2});
  const auto dr = graph::bfs_reference(CscGraph::from_edges(ring), 0).height;
  const auto ds = graph::bfs_reference(CscGraph::from_edges(sw), 0).height;
  EXPECT_LT(ds, dr);
}

// ------------------------------------------------------------------ lattice

TEST(TriangulatedGrid, InternalDegreeIsSix) {
  const auto g = triangulated_grid(20, 20);
  const auto s = graph::degree_stats(g);
  EXPECT_EQ(s.max, 6);
  EXPECT_NEAR(s.mean, 6.0, 0.6);  // boundary vertices drag the mean down
  EXPECT_TRUE(is_connected_undirected(g));
}

TEST(MarkovLattice, DepthTracksLength) {
  const auto short_g = markov_lattice({.length = 20, .width = 30, .seed = 6});
  const auto long_g = markov_lattice({.length = 60, .width = 30, .seed = 6});
  const auto ds = graph::bfs_reference(CscGraph::from_edges(short_g), 0).height;
  const auto dl = graph::bfs_reference(CscGraph::from_edges(long_g), 0).height;
  EXPECT_GT(dl, ds);
  EXPECT_GE(ds, 19);  // the length dimension: stencil advances 1 level/hop
}

TEST(MarkovLattice, IsDirectedWithBoundedMean) {
  const auto g = markov_lattice({.length = 40, .width = 40, .seed = 6});
  EXPECT_TRUE(g.directed());
  const auto s = graph::degree_stats(g);
  EXPECT_NEAR(s.mean, 6.0, 1.5);
}

TEST(MarkovLattice, ExtraStencilDensifies) {
  const auto base = markov_lattice({.length = 30, .width = 30, .seed = 7});
  const auto dense = markov_lattice({.length = 30, .width = 30,
                                     .extra_stencil = 8, .seed = 7});
  EXPECT_GT(graph::degree_stats(dense).mean, graph::degree_stats(base).mean + 4);
}

// --------------------------------------------------------------------- road

TEST(RoadNetwork, MeanDegreeNearTwoAndDeep) {
  const auto g = road_network({.grid_rows = 8, .grid_cols = 8, .keep_p = 0.8,
                               .subdivisions = 20, .seed = 8});
  const auto s = graph::degree_stats(g);
  EXPECT_NEAR(s.mean, 2.0, 0.3);
  const auto d = graph::bfs_reference(CscGraph::from_edges(g), 0).height;
  EXPECT_GT(d, 100);  // depth ~ grid diameter x subdivisions
}

TEST(RoadNetwork, IsConnected) {
  const auto g = road_network({.grid_rows = 6, .grid_cols = 6, .keep_p = 0.5,
                               .subdivisions = 5, .seed = 9});
  EXPECT_TRUE(is_connected_undirected(g));
}

// --------------------------------------------------------------------- kmer

TEST(KmerLike, DegreeBoundedByBranching) {
  const auto g = kmer_like({.chains = 32, .chain_len = 50, .branching = 4,
                            .seed = 10});
  const auto s = graph::degree_stats(g);
  EXPECT_LE(s.max, 2 * 4);
  EXPECT_NEAR(s.mean, 2.0, 0.3);
}

TEST(KmerLike, IsConnectedAndDeep) {
  const auto g = kmer_like({.chains = 16, .chain_len = 80, .branching = 4,
                            .seed = 11});
  EXPECT_TRUE(is_connected_undirected(g));
  const auto d = graph::bfs_reference(CscGraph::from_edges(g), 0).height;
  EXPECT_GT(d, 80);
}

// ------------------------------------------------------------- preferential

TEST(PreferentialAttachment, UndirectedHeavyTail) {
  const auto g = preferential_attachment({.n = 4000, .m_attach = 2,
                                          .directed = false, .seed = 12});
  const auto s = graph::degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max), 8.0 * s.mean);
  EXPECT_TRUE(is_connected_undirected(g));
}

TEST(PreferentialAttachment, DirectedHasConstantOutDegree) {
  const auto g = preferential_attachment({.n = 1000, .m_attach = 2,
                                          .directed = true, .seed = 13});
  EXPECT_TRUE(g.directed());
  const auto s = graph::degree_stats(g);
  EXPECT_LE(s.max, 2);
}

TEST(SuperhubSocial, CelebritiesAbsorbArcs) {
  const auto g = superhub_social({.n = 5000, .out_degree = 10,
                                  .celebrities = 4, .celebrity_p = 0.3,
                                  .seed = 14});
  const auto in = g.in_degrees();
  eidx_t celeb = 0;
  for (int i = 0; i < 4; ++i) celeb += in[static_cast<std::size_t>(i)];
  EXPECT_GT(static_cast<double>(celeb),
            0.2 * static_cast<double>(g.num_arcs()));
}

// ---------------------------------------------------------------------- web

TEST(WebCrawl, MatchesRequestedShape) {
  const auto g = web_crawl({.n = 5000, .out_degree = 15, .copy_p = 0.5,
                            .local_p = 0.85, .window = 100, .seed = 15});
  EXPECT_TRUE(g.directed());
  const auto s = graph::degree_stats(g);
  EXPECT_GT(s.mean, 5.0);
  // Locality window keeps the BFS moderately deep (not log n).
  const auto d = graph::bfs_reference(CscGraph::from_edges(g), 0).height;
  EXPECT_GT(d, 10);
}

TEST(WebCrawl, BackboneKeepsEveryPageReachable) {
  const auto g = web_crawl({.n = 1000, .out_degree = 5, .copy_p = 0.4,
                            .local_p = 0.8, .window = 50, .seed = 16});
  const auto r = graph::bfs_reference(CscGraph::from_edges(g), 0);
  EXPECT_EQ(r.reached, 1000);
}

// ------------------------------------------------------------------ traffic

TEST(TrafficTrace, OneHubDominates) {
  const auto g = traffic_trace({.n = 8000, .hubs = 10, .decay = 0.45,
                                .seed = 17});
  const auto s = graph::degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max),
            0.3 * static_cast<double>(g.num_vertices()));
  EXPECT_NEAR(s.mean, 2.0, 0.5);
}

TEST(TrafficTrace, ShallowBfs) {
  const auto g = traffic_trace({.n = 8000, .hubs = 10, .decay = 0.45,
                                .seed = 17});
  const auto d = graph::bfs_reference(CscGraph::from_edges(g), 0).height;
  EXPECT_LE(d, 12);
  EXPECT_TRUE(is_connected_undirected(g));
}

// ------------------------------------------------------------ random graphs

TEST(ErdosRenyi, RespectsDirectedness) {
  EXPECT_TRUE(erdos_renyi({.n = 50, .arcs = 100, .directed = true, .seed = 18})
                  .directed());
  const auto u =
      erdos_renyi({.n = 50, .arcs = 100, .directed = false, .seed = 18});
  EXPECT_FALSE(u.directed());
  EXPECT_TRUE(is_symmetric(u));
}

TEST(RandomLocalDigraph, MeanDegreeAndDepthAsRequested) {
  const auto g = random_local_digraph({.n = 4000, .mean_out_degree = 14,
                                       .degree_dispersion = 1.0,
                                       .max_out_degree = 153, .window = 260,
                                       .global_p = 0.01, .seed = 19});
  const auto s = graph::degree_stats(g);
  EXPECT_NEAR(s.mean, 14.0, 5.0);
  EXPECT_LE(s.max, 153 + 1);  // +1 backbone arc
  const auto d = graph::bfs_reference(CscGraph::from_edges(g), 0).height;
  EXPECT_LT(d, 40);
  EXPECT_GT(d, 5);
}

TEST(AllGenerators, ProduceCanonicalEdgeLists) {
  // No duplicates, no self-loops — generators must hand analysis-ready data.
  const std::vector<EdgeList> graphs = {
      mycielski(7),
      kronecker({.scale = 8, .edge_factor = 8, .seed = 1}),
      small_world({.n = 500, .k = 6, .rewire_p = 0.1, .seed = 1}),
      triangulated_grid(12, 12),
      markov_lattice({.length = 15, .width = 15, .seed = 1}),
      road_network({.grid_rows = 5, .grid_cols = 5, .keep_p = 0.8,
                    .subdivisions = 3, .seed = 1}),
      kmer_like({.chains = 8, .chain_len = 20, .branching = 3, .seed = 1}),
      preferential_attachment({.n = 300, .m_attach = 2, .directed = false,
                               .seed = 1}),
      superhub_social({.n = 300, .out_degree = 6, .celebrities = 3,
                       .celebrity_p = 0.3, .seed = 1}),
      web_crawl({.n = 300, .out_degree = 6, .copy_p = 0.5, .local_p = 0.8,
                 .window = 30, .seed = 1}),
      traffic_trace({.n = 300, .hubs = 5, .decay = 0.5, .seed = 1}),
      erdos_renyi({.n = 300, .arcs = 900, .directed = true, .seed = 1}),
      random_local_digraph({.n = 300, .mean_out_degree = 5,
                            .degree_dispersion = 0.8, .max_out_degree = 50,
                            .window = 30, .global_p = 0.02, .seed = 1}),
  };
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const auto& el = graphs[gi];
    EdgeList canon = el;
    canon.canonicalize();
    EXPECT_EQ(canon.edges(), el.edges()) << "generator #" << gi;
    for (const graph::Edge& e : el.edges()) {
      EXPECT_NE(e.u, e.v) << "self loop from generator #" << gi;
    }
  }
}

}  // namespace
}  // namespace turbobc::gen
