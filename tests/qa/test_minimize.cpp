// ddmin minimizer: converges to the minimal failing core, preserves the
// undirected both-arcs invariant, respects its evaluation budget, and
// rejects passing inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "generators/random_graphs.hpp"
#include "qa/minimize.hpp"

namespace turbobc::qa {
namespace {

using graph::Edge;
using graph::EdgeList;

bool has_arc(const EdgeList& g, vidx_t u, vidx_t v) {
  return std::any_of(g.edges().begin(), g.edges().end(),
                     [&](const Edge& e) { return e.u == u && e.v == v; });
}

TEST(Minimize, ShrinksToTheFailingArc) {
  // Synthetic failure: "the graph contains arc (2, 3)". The minimal
  // reproducer is that single arc.
  EdgeList g = gen::erdos_renyi({.n = 30, .arcs = 120, .directed = true,
                                 .seed = 6});
  g.add_edge(2, 3);
  const auto pred = [](const EdgeList& cand) { return has_arc(cand, 2, 3); };
  ASSERT_TRUE(pred(g));

  const MinimizeResult r = minimize_graph(g, pred);
  EXPECT_EQ(r.graph.num_arcs(), 1);
  EXPECT_TRUE(pred(r.graph));
  // The predicate is tied to vertex LABELS, so the renumbering compaction
  // pass no longer fails it and must be rolled back.
  EXPECT_EQ(r.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.original_arcs, g.num_arcs());
  EXPECT_EQ(r.original_vertices, g.num_vertices());
  EXPECT_GT(r.evaluations, 0);
}

TEST(Minimize, CompactsIsolatedVerticesWhenFailureSurvives) {
  // A label-independent predicate lets the compaction pass stick: the
  // reproducer ends up as one arc on two vertices.
  const EdgeList g = gen::erdos_renyi({.n = 30, .arcs = 120, .directed = true,
                                       .seed = 12});
  const MinimizeResult r = minimize_graph(
      g, [](const EdgeList& cand) { return cand.num_arcs() >= 1; });
  EXPECT_EQ(r.graph.num_arcs(), 1);
  EXPECT_EQ(r.graph.num_vertices(), 2);
}

TEST(Minimize, PredicateSeesOnlySmallerCandidates) {
  EdgeList g = gen::erdos_renyi({.n = 20, .arcs = 60, .directed = true,
                                 .seed = 7});
  const eidx_t original = g.num_arcs();
  eidx_t largest_probe = 0;
  const auto pred = [&](const EdgeList& cand) {
    largest_probe = std::max(largest_probe, cand.num_arcs());
    return cand.num_arcs() >= original / 2;
  };
  const MinimizeResult r = minimize_graph(g, pred);
  EXPECT_LE(largest_probe, original);
  EXPECT_GE(r.graph.num_arcs(), original / 2);
  EXPECT_LT(r.graph.num_arcs(), original);
}

TEST(Minimize, UndirectedPairsMoveTogether) {
  // Units for undirected graphs are unordered edges: the minimizer must
  // never emit a candidate with (u,v) but not (v,u).
  const EdgeList g =
      gen::erdos_renyi({.n = 16, .arcs = 60, .directed = false, .seed = 8});
  bool saw_asymmetric = false;
  const auto symmetric = [](const EdgeList& cand) {
    std::map<std::pair<vidx_t, vidx_t>, int> count;
    for (const Edge& e : cand.edges())
      if (e.u != e.v) ++count[{e.u, e.v}];
    for (const auto& [arc, n] : count) {
      const auto rev = count.find({arc.second, arc.first});
      if (rev == count.end() || rev->second != n) return false;
    }
    return true;
  };
  const auto pred = [&](const EdgeList& cand) {
    if (!symmetric(cand)) saw_asymmetric = true;
    return cand.num_arcs() >= 2;
  };
  const MinimizeResult r = minimize_graph(g, pred);
  EXPECT_FALSE(saw_asymmetric);
  EXPECT_TRUE(symmetric(r.graph));
  EXPECT_EQ(r.graph.num_arcs(), 2);  // one unordered edge, both arcs
  EXPECT_FALSE(r.graph.directed());
}

TEST(Minimize, RespectsEvaluationBudget) {
  const EdgeList g = gen::erdos_renyi({.n = 40, .arcs = 200, .directed = true,
                                       .seed = 9});
  int calls = 0;
  const auto pred = [&](const EdgeList&) {
    ++calls;
    return true;  // everything "fails": worst case for ddmin
  };
  MinimizeOptions opt;
  opt.max_evaluations = 25;
  const MinimizeResult r = minimize_graph(g, pred, opt);
  EXPECT_LE(r.evaluations, 25);
  EXPECT_EQ(calls, r.evaluations);  // the entry probe is counted too
  EXPECT_GE(r.graph.num_arcs(), 0);
}

TEST(Minimize, EverythingFailsShrinksToNothing) {
  const EdgeList g = gen::erdos_renyi({.n = 12, .arcs = 40, .directed = true,
                                       .seed = 10});
  const MinimizeResult r =
      minimize_graph(g, [](const EdgeList&) { return true; });
  EXPECT_EQ(r.graph.num_arcs(), 0);
  EXPECT_LE(r.graph.num_vertices(), 1);  // compacted, min one vertex
}

TEST(Minimize, RejectsPassingGraph) {
  const EdgeList g(3, true);
  EXPECT_THROW(minimize_graph(g, [](const EdgeList&) { return false; }),
               InvalidArgument);
}

TEST(Minimize, ForInvariantShrinksOracleFailure) {
  // The asymmetric-undirected reproducer the fuzzer once found, embedded in
  // a larger healthy path graph: minimize_for_invariant must strip the
  // healthy part.
  EdgeList g(10, false);
  for (vidx_t v = 0; v + 1 < 8; ++v) {
    g.add_edge(v, v + 1);
    g.add_edge(v + 1, v);
  }
  g.add_edge(8, 9);  // no reverse arc: breaks the undirected contract
  const OracleReport before = check_graph(g);
  ASSERT_FALSE(before.ok());

  const MinimizeResult r =
      minimize_for_invariant(g, before.primary_invariant());
  EXPECT_LT(r.graph.num_arcs(), g.num_arcs());
  const OracleReport after = check_graph(r.graph);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.primary_invariant(), before.primary_invariant());
}

}  // namespace
}  // namespace turbobc::qa
