// The invariant oracle itself: clean graphs must pass every check, the
// analytic footprint helpers must match the paper's model, and a graph
// violating a library precondition must surface as a violation rather
// than an exception.
#include <gtest/gtest.h>

#include "core/footprint.hpp"
#include "generators/generators.hpp"
#include "qa/oracle.hpp"

namespace turbobc::qa {
namespace {

using graph::EdgeList;

TEST(Oracle, CleanUndirectedGraphPasses) {
  const auto g =
      gen::erdos_renyi({.n = 24, .arcs = 80, .directed = false, .seed = 4});
  const OracleReport r = check_graph(g);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.vertices, 24);
  EXPECT_GT(r.arcs, 0);
}

TEST(Oracle, CleanDirectedGraphPasses) {
  const auto g = gen::markov_lattice({.length = 6, .width = 3, .seed = 5});
  const OracleReport r = check_graph(g);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, EmptyGraphPasses) {
  const OracleReport r = check_graph(EdgeList(0, true));
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.vertices, 0);
  EXPECT_EQ(r.arcs, 0);
}

TEST(Oracle, SingleVertexPasses) {
  const OracleReport r = check_graph(EdgeList(1, false));
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, DisconnectedGraphPasses) {
  // Two components plus isolated vertices: unreachable-vertex handling in
  // every implementation, the depth -1 convention, zero contributions.
  EdgeList g(9, false);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(4, 5);
  g.add_edge(5, 4);
  const OracleReport r = check_graph(g);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, SelfLoopsAndDuplicatesAreCanonicalizedAway) {
  EdgeList g(4, true);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // duplicate
  g.add_edge(1, 1);  // self-loop
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const OracleReport r = check_graph(g);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.arcs, 3);  // canonical shape is what the oracle reports
}

TEST(Oracle, PreconditionViolatingGraphReportsInsteadOfThrowing) {
  // An "undirected" graph missing the reverse arc breaks the EdgeList
  // contract; implementations disagree or throw, and the oracle must
  // convert that into a report, never propagate.
  EdgeList g(3, false);
  g.add_edge(0, 1);  // no (1, 0)
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  const OracleReport r = check_graph(g);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.primary_invariant().empty());
}

TEST(Oracle, ReportSummaryNamesInvariants) {
  EdgeList g(3, false);
  g.add_edge(0, 1);
  const OracleReport r = check_graph(g);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.summary().find(r.primary_invariant()), std::string::npos);
}

TEST(Oracle, TolerantOptionsStillCatchAsymmetry) {
  // The violation is structural, not numeric: loosening the tolerance must
  // not make a broken graph pass.
  EdgeList g(2, false);
  g.add_edge(1, 0);
  OracleOptions opt;
  opt.tolerance = 1e-2;
  EXPECT_FALSE(check_graph(g, opt).ok());
}

// Footprint helpers vs the paper's word model (footprint.hpp counts 4-byte
// words: TurboBC 7n + m, gunrock-like 9n + 2m).

TEST(OracleFootprint, CscPeakMatchesPaperModelPlusCpaEntry) {
  const vidx_t n = 100;
  const eidx_t m = 400;
  // CSC structure stores n+1 offsets, the model counts n: exactly one
  // extra 4-byte word separates the two.
  EXPECT_EQ(expected_turbobc_peak_bytes(bc::Variant::kScCsc, n, m, false),
            bc::turbobc_model_bytes(n, m) + 4);
  EXPECT_EQ(expected_turbobc_peak_bytes(bc::Variant::kVeCsc, n, m, false),
            bc::turbobc_model_bytes(n, m) + 4);
}

TEST(OracleFootprint, CoocPeakSwapsCscForCoordinatePair) {
  const vidx_t n = 100;
  const eidx_t m = 400;
  // COOC stores 2m coordinates instead of (n+1) + m CSC words.
  const auto csc = expected_turbobc_peak_bytes(bc::Variant::kScCsc, n, m, false);
  const auto cooc =
      expected_turbobc_peak_bytes(bc::Variant::kScCooc, n, m, false);
  EXPECT_EQ(cooc, csc - 4 * (static_cast<std::size_t>(n) + 1) + 4 * m);
}

TEST(OracleFootprint, EdgeBcAddsOneWordPerArc) {
  const vidx_t n = 50;
  const eidx_t m = 200;
  for (const auto v :
       {bc::Variant::kScCooc, bc::Variant::kScCsc, bc::Variant::kVeCsc}) {
    EXPECT_EQ(expected_turbobc_peak_bytes(v, n, m, true),
              expected_turbobc_peak_bytes(v, n, m, false) + 4 * m);
  }
}

TEST(OracleFootprint, ApproxPeakAddsTwoMomentArrays) {
  // The moment runs carry two extra n-word float arrays ("approx_sum" /
  // "approx_sumsq"), lifting the modeled footprint from 7n + m to 9n + m.
  const vidx_t n = 100;
  const eidx_t m = 400;
  for (const auto v :
       {bc::Variant::kScCooc, bc::Variant::kScCsc, bc::Variant::kVeCsc}) {
    EXPECT_EQ(expected_approx_peak_bytes(v, n, m),
              expected_turbobc_peak_bytes(v, n, m, false) +
                  8 * static_cast<std::size_t>(n));
  }
}

TEST(Oracle, ApproxChecksCanBeDisabled) {
  const auto g =
      gen::erdos_renyi({.n = 30, .arcs = 100, .directed = false, .seed = 9});
  OracleOptions opt;
  opt.check_approx = false;
  const OracleReport r = check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, ApproxBudgetIsRespectedOnCleanGraphs) {
  // A tiny pivot budget cannot converge, but coverage / accounting /
  // determinism must still hold — the oracle checks the intervals, not the
  // converged flag.
  const auto g =
      gen::erdos_renyi({.n = 40, .arcs = 150, .directed = true, .seed = 12});
  OracleOptions opt;
  opt.approx_budget = 8;
  const OracleReport r = check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, DistChecksCanBeDisabled) {
  const auto g =
      gen::erdos_renyi({.n = 30, .arcs = 100, .directed = true, .seed = 15});
  OracleOptions opt;
  opt.check_dist = false;
  const OracleReport r = check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, DistChecksPassWithMoreDevicesThanVertices) {
  // Seven shards over five columns: trailing shards hold zero columns, the
  // degenerate end of the 1D partition. Agreement, inventory and comm
  // conservation must all hold on empty shards too.
  const auto g =
      gen::erdos_renyi({.n = 5, .arcs = 12, .directed = true, .seed = 21});
  OracleOptions opt;
  opt.dist_devices = 7;
  const OracleReport r = check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, DaemonChecksCanBeDisabled) {
  const auto g =
      gen::erdos_renyi({.n = 26, .arcs = 90, .directed = false, .seed = 41});
  OracleOptions opt;
  opt.check_daemon = false;
  const OracleReport r = check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, DaemonChecksPassOnDirectedGraph) {
  // The daemon stage on a clean directed graph: socket transcripts vs the
  // wire session, and the concurrent (epoch, digest) replay — insert and
  // delete apply single arcs here, the branch the undirected clean-graph
  // pass does not reach.
  const auto g =
      gen::erdos_renyi({.n = 22, .arcs = 70, .directed = true, .seed = 42});
  const OracleReport r = check_graph(g);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, OocChecksCanBeDisabled) {
  const auto g =
      gen::erdos_renyi({.n = 30, .arcs = 100, .directed = false, .seed = 33});
  OracleOptions opt;
  opt.check_ooc = false;
  const OracleReport r = check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, HybridChecksCanBeDisabled) {
  const auto g =
      gen::erdos_renyi({.n = 30, .arcs = 100, .directed = false, .seed = 35});
  OracleOptions opt;
  opt.check_hybrid = false;
  const OracleReport r = check_graph(g, opt);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, HybridChecksPassOnDirectedGraph) {
  // Directed shapes skew the block weights (stored-column in-degrees), so
  // the probe usually lands off block 0 and the host steals a real tail —
  // both schedule branches run inside the hybrid stage.
  const auto g =
      gen::erdos_renyi({.n = 26, .arcs = 85, .directed = true, .seed = 36});
  const OracleReport r = check_graph(g);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Oracle, OocChecksPassOnDirectedScatterPath) {
  // Directed graphs route the streamed backward stage through the CCSC
  // scatter kernel; the clean-graph pass above covers the undirected
  // gather twin.
  const auto g =
      gen::erdos_renyi({.n = 28, .arcs = 90, .directed = true, .seed = 34});
  const OracleReport r = check_graph(g);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(OracleFootprint, GunrockInventoryDominatesItsModel) {
  const vidx_t n = 100;
  const eidx_t m = 400;
  // The actual baseline inventory carries the CSR/CSC +1 offsets, a queue
  // counter, and m words of load-balancing scratch beyond the 9n + 2m model.
  EXPECT_GT(expected_gunrock_inventory_bytes(n, m),
            bc::gunrock_model_bytes(n, m));
  EXPECT_EQ(expected_gunrock_inventory_bytes(n, m),
            bc::gunrock_model_bytes(n, m) + 4 * (2 + 1) + 4 * m +
                4 * static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace turbobc::qa
