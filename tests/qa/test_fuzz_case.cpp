// FuzzCase construction, the .fuzz text format, and its rejection paths.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "qa/fuzz_case.hpp"

namespace turbobc::qa {
namespace {

TEST(FuzzCase, BuildGraphIsDeterministic) {
  for (const Family family : kGeneratorFamilies) {
    FuzzCase c;
    c.family = family;
    c.seed = 77;
    c.size_class = 0;
    const auto a = build_graph(c);
    const auto b = build_graph(c);
    EXPECT_EQ(a.edges(), b.edges()) << to_string(family);
    EXPECT_EQ(a.num_vertices(), b.num_vertices()) << to_string(family);
    EXPECT_GT(a.num_vertices(), 0) << to_string(family);
  }
}

TEST(FuzzCase, SizeClassesGrow) {
  FuzzCase c;
  c.family = Family::kErdosRenyi;
  c.seed = 5;
  c.size_class = 0;
  const auto tiny = build_graph(c);
  c.size_class = kMaxSizeClass;
  const auto medium = build_graph(c);
  EXPECT_GT(medium.num_vertices(), tiny.num_vertices());
}

TEST(FuzzCase, EverySeedBuildsEveryFamily) {
  // The fuzzer derives family parameters from arbitrary u64 seeds; no
  // derived parameter may ever violate a generator's TBC_CHECK contract.
  for (const Family family : kGeneratorFamilies) {
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      FuzzCase c;
      c.family = family;
      c.seed = seed * 0x9e3779b97f4a7c15ULL + seed;
      c.size_class = static_cast<int>(seed % (kMaxSizeClass + 1));
      EXPECT_NO_THROW(build_graph(c))
          << to_string(family) << " seed " << c.seed;
    }
  }
}

TEST(FuzzCase, GeneratorCaseRoundTripsThroughText) {
  FuzzCase c;
  c.name = "roundtrip";
  c.family = Family::kSmallWorld;
  c.seed = 123456789;
  c.size_class = 1;
  c.mutations.push_back({gen::MutationKind::kAddEdges, 7, 3});
  c.mutations.push_back({gen::MutationKind::kDisconnectedUnion, 8, 4});

  std::ostringstream out;
  write_fuzz_case(out, c);
  std::istringstream in(out.str());
  const FuzzCase back = read_fuzz_case(in);
  EXPECT_EQ(back, c);
  EXPECT_EQ(build_graph(back).edges(), build_graph(c).edges());
}

TEST(FuzzCase, ExplicitCaseRoundTripsThroughText) {
  graph::EdgeList g(4, true);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 0);
  const FuzzCase c = explicit_case(g, "explicit-roundtrip");

  std::ostringstream out;
  write_fuzz_case(out, c);
  std::istringstream in(out.str());
  const FuzzCase back = read_fuzz_case(in);
  EXPECT_EQ(back, c);
  EXPECT_EQ(build_graph(back).edges(), g.edges());
}

TEST(FuzzCase, FileRoundTrip) {
  FuzzCase c;
  c.family = Family::kGrid;
  c.seed = 3;
  const std::string path = ::testing::TempDir() + "/turbobc_case.fuzz";
  write_fuzz_case_file(path, c);
  EXPECT_EQ(read_fuzz_case_file(path), c);
}

TEST(FuzzCase, CommentsAndBlankLinesAreIgnored) {
  std::istringstream in(
      "turbobc.fuzz.v1\n"
      "# header comment\n"
      "\n"
      "family grid\n"
      "# interleaved\n"
      "seed 9\n"
      "end\n");
  const FuzzCase c = read_fuzz_case(in);
  EXPECT_EQ(c.family, Family::kGrid);
  EXPECT_EQ(c.seed, 9u);
}

ParseError capture(const std::string& text) {
  std::istringstream in(text);
  try {
    read_fuzz_case(in);
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError for: " << text;
  return ParseError("unreached");
}

void expect_rejected(const std::string& text) {
  std::istringstream in(text);
  EXPECT_THROW(read_fuzz_case(in), ParseError) << text;
}

TEST(FuzzCaseErrors, MissingHeader) {
  EXPECT_EQ(capture("family grid\nend\n").line_number(), 1u);
}

TEST(FuzzCaseErrors, UnknownFamily) {
  const auto e = capture("turbobc.fuzz.v1\nfamily nosuch\nend\n");
  EXPECT_EQ(e.line_number(), 2u);
}

TEST(FuzzCaseErrors, SizeClassOutOfRange) {
  expect_rejected("turbobc.fuzz.v1\nfamily grid\nsize 9\nend\n");
}

TEST(FuzzCaseErrors, ArcOutOfRange) {
  const auto e = capture(
      "turbobc.fuzz.v1\n"
      "family explicit\n"
      "vertices 2\n"
      "arc 0 5\n"
      "end\n");
  EXPECT_EQ(e.line_number(), 4u);
}

TEST(FuzzCaseErrors, ArcBeforeVertexCount) {
  // explicit_n defaults to 0, so any arc is out of range until `vertices`.
  expect_rejected("turbobc.fuzz.v1\nfamily explicit\narc 0 1\nend\n");
}

TEST(FuzzCaseErrors, MalformedMutation) {
  expect_rejected("turbobc.fuzz.v1\nfamily grid\nmutation bogus 1 1\nend\n");
}

TEST(FuzzCaseErrors, UnknownKey) {
  expect_rejected("turbobc.fuzz.v1\nfamily grid\nwhat 1\nend\n");
}

TEST(FuzzCaseErrors, MissingEnd) {
  expect_rejected("turbobc.fuzz.v1\nfamily grid\nseed 1\n");
}

TEST(FuzzCaseErrors, MissingFamily) {
  expect_rejected("turbobc.fuzz.v1\nseed 1\nend\n");
}

}  // namespace
}  // namespace turbobc::qa
