// The fuzz loop: case drawing is deterministic and budget-prefix-stable, a
// clean run reports no failures, and the replay path reproduces a failure
// (with the same minimized graph) run after run.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "qa/fuzzer.hpp"

namespace turbobc::qa {
namespace {

TEST(Fuzzer, DrawCaseIsDeterministic) {
  FuzzerOptions opt;
  opt.seed = 11;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(draw_case(opt, i), draw_case(opt, i)) << "index " << i;
  }
}

TEST(Fuzzer, DrawCaseIsBudgetPrefixStable) {
  // Raising the budget must not change earlier cases: a failure at index k
  // reproduces under any budget > k.
  FuzzerOptions small;
  small.seed = 3;
  small.budget = 10;
  FuzzerOptions large = small;
  large.budget = 500;
  for (int i = 0; i < small.budget; ++i) {
    EXPECT_EQ(draw_case(small, i), draw_case(large, i)) << "index " << i;
  }
}

TEST(Fuzzer, DifferentSeedsDrawDifferentStreams) {
  FuzzerOptions a;
  a.seed = 1;
  FuzzerOptions b;
  b.seed = 2;
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (!(draw_case(a, i) == draw_case(b, i))) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(Fuzzer, DrawCoversManyFamilies) {
  FuzzerOptions opt;
  opt.seed = 5;
  std::set<Family> seen;
  for (int i = 0; i < 200; ++i) seen.insert(draw_case(opt, i).family);
  // All 13 generator families should appear within a couple hundred draws.
  EXPECT_GE(seen.size(), 10u);
}

TEST(Fuzzer, DrawRespectsSizeAndMutationCaps) {
  FuzzerOptions opt;
  opt.seed = 9;
  opt.max_size_class = 1;
  opt.max_mutations = 2;
  for (int i = 0; i < 100; ++i) {
    const FuzzCase c = draw_case(opt, i);
    EXPECT_LE(c.size_class, 1) << "index " << i;
    EXPECT_LE(c.mutations.size(), 2u) << "index " << i;
  }
}

TEST(Fuzzer, SmallCleanRunFindsNothing) {
  FuzzerOptions opt;
  opt.seed = 21;
  opt.budget = 12;
  opt.max_size_class = 0;  // keep the unit test cheap
  const FuzzSummary s = run_fuzzer(opt);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.cases_run, 12);
  EXPECT_GT(s.vertices_checked, 0);
  EXPECT_GT(s.arcs_checked, 0);
}

TEST(Fuzzer, RunIsDeterministic) {
  FuzzerOptions opt;
  opt.seed = 22;
  opt.budget = 6;
  opt.max_size_class = 0;
  const FuzzSummary a = run_fuzzer(opt);
  const FuzzSummary b = run_fuzzer(opt);
  EXPECT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.vertices_checked, b.vertices_checked);
  EXPECT_EQ(a.arcs_checked, b.arcs_checked);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(Fuzzer, LogStreamReceivesProgress) {
  FuzzerOptions opt;
  opt.seed = 23;
  opt.budget = 10;
  opt.max_size_class = 0;
  std::ostringstream log;
  opt.log = &log;
  run_fuzzer(opt);
  EXPECT_FALSE(log.str().empty());
}

/// An "undirected" two-vertex graph with a single arc: violates the
/// EdgeList contract, so the oracle deterministically rejects it — the
/// stand-in for a real found bug in replay tests.
FuzzCase broken_case() {
  graph::EdgeList g(2, false);
  g.add_edge(1, 0);
  return explicit_case(g, "broken");
}

TEST(Fuzzer, ReplayReproducesAFailureDeterministically) {
  const ReplayResult first = replay_case(broken_case());
  ASSERT_TRUE(first.failed);
  EXPECT_FALSE(first.report.ok());

  const ReplayResult second = replay_case(broken_case());
  ASSERT_TRUE(second.failed);
  // Same verdict AND same minimized graph, run after run.
  EXPECT_EQ(first.report.primary_invariant(),
            second.report.primary_invariant());
  EXPECT_EQ(first.minimized, second.minimized);
  EXPECT_EQ(build_graph(first.minimized).edges(),
            build_graph(second.minimized).edges());
}

TEST(Fuzzer, ReplayOfCleanCasePasses) {
  FuzzCase c;
  c.family = Family::kGrid;
  c.seed = 2;
  c.size_class = 0;
  const ReplayResult r = replay_case(c);
  EXPECT_FALSE(r.failed);
  EXPECT_TRUE(r.report.ok()) << r.report.summary();
}

TEST(Fuzzer, ReplayFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/turbobc_replay.fuzz";
  write_fuzz_case_file(path, broken_case());
  const ReplayResult from_file = replay_file(path);
  const ReplayResult direct = replay_case(broken_case());
  EXPECT_TRUE(from_file.failed);
  EXPECT_EQ(from_file.report.primary_invariant(),
            direct.report.primary_invariant());
  EXPECT_EQ(from_file.minimized.explicit_edges,
            direct.minimized.explicit_edges);
}

}  // namespace
}  // namespace turbobc::qa
