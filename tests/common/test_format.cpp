#include <gtest/gtest.h>

#include "common/format.hpp"

namespace turbobc {
namespace {

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(3ull * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(human_bytes(5ull * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1500), "1.5k");
  EXPECT_EQ(human_count(2.5e6), "2.5M");
  EXPECT_EQ(human_count(1.95e9), "1.9G");  // snprintf %.1f rounds half-even
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(10.0, 0), "10");
}

}  // namespace
}  // namespace turbobc
