#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/error.hpp"

namespace turbobc {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, ParsesNameValuePairs) {
  const auto a = parse({"prog", "--scale", "12", "--name", "kron"});
  EXPECT_EQ(a.get_int("scale", 0), 12);
  EXPECT_EQ(a.get("name", ""), "kron");
}

TEST(CliArgs, ParsesEqualsForm) {
  const auto a = parse({"prog", "--seed=99"});
  EXPECT_EQ(a.get_int("seed", 0), 99);
}

TEST(CliArgs, BareFlagIsTruthy) {
  const auto a = parse({"prog", "--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(CliArgs, FallbacksApply) {
  const auto a = parse({"prog"});
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
}

TEST(CliArgs, CollectsPositional) {
  const auto a = parse({"prog", "file.mtx", "--k", "3", "other"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "file.mtx");
  EXPECT_EQ(a.positional()[1], "other");
  EXPECT_EQ(a.program(), "prog");
}

TEST(CliArgs, FlagBeforeFlagIsNotConsumedAsValue) {
  const auto a = parse({"prog", "--x", "--y", "5"});
  EXPECT_TRUE(a.has("x"));
  EXPECT_EQ(a.get_int("y", 0), 5);
}

TEST(CliArgs, GetIntRejectsGarbage) {
  EXPECT_THROW(parse({"prog", "--k", "12x"}).get_int("k", 0), UsageError);
  EXPECT_THROW(parse({"prog", "--k", "banana"}).get_int("k", 0), UsageError);
  EXPECT_THROW(parse({"prog", "--k", ""}).get_int("k", 0), UsageError);
  EXPECT_THROW(
      parse({"prog", "--k", "99999999999999999999"}).get_int("k", 0),
      UsageError);
}

TEST(CliArgs, GetCountAcceptsPositives) {
  EXPECT_EQ(parse({"prog", "--devices", "4"}).get_count("devices", 1), 4);
  EXPECT_EQ(parse({"prog", "--batch=1"}).get_count("batch", 8), 1);
}

TEST(CliArgs, GetCountRejectsNonPositiveValues) {
  EXPECT_THROW(parse({"prog", "--devices", "0"}).get_count("devices", 1),
               UsageError);
  EXPECT_THROW(parse({"prog", "--threads", "-2"}).get_count("threads", 0),
               UsageError);
  EXPECT_THROW(parse({"prog", "--budget", "3x"}).get_count("budget", 1000),
               UsageError);
}

TEST(CliArgs, GetCountAbsentFlagKeepsSentinelFallback) {
  // Sentinel fallbacks like 0 ("auto" thread count) must stay legal when
  // the flag is absent — only a present non-positive value is misuse.
  EXPECT_EQ(parse({"prog"}).get_count("threads", 0), 0);
  EXPECT_EQ(parse({"prog"}).get_count("devices", 1), 1);
}

}  // namespace
}  // namespace turbobc
