#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace turbobc {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, ParsesNameValuePairs) {
  const auto a = parse({"prog", "--scale", "12", "--name", "kron"});
  EXPECT_EQ(a.get_int("scale", 0), 12);
  EXPECT_EQ(a.get("name", ""), "kron");
}

TEST(CliArgs, ParsesEqualsForm) {
  const auto a = parse({"prog", "--seed=99"});
  EXPECT_EQ(a.get_int("seed", 0), 99);
}

TEST(CliArgs, BareFlagIsTruthy) {
  const auto a = parse({"prog", "--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(CliArgs, FallbacksApply) {
  const auto a = parse({"prog"});
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
}

TEST(CliArgs, CollectsPositional) {
  const auto a = parse({"prog", "file.mtx", "--k", "3", "other"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "file.mtx");
  EXPECT_EQ(a.positional()[1], "other");
  EXPECT_EQ(a.program(), "prog");
}

TEST(CliArgs, FlagBeforeFlagIsNotConsumedAsValue) {
  const auto a = parse({"prog", "--x", "--y", "5"});
  EXPECT_TRUE(a.has("x"));
  EXPECT_EQ(a.get_int("y", 0), 5);
}

}  // namespace
}  // namespace turbobc
