#include <gtest/gtest.h>

#include <set>

#include "common/prng.hpp"

namespace turbobc {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformRespectsBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Xoshiro256, UniformBoundOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Xoshiro256, UniformRejectsZeroBound) {
  Xoshiro256 rng(3);
  EXPECT_THROW(rng.uniform(0), InvalidArgument);
}

TEST(Xoshiro256, UniformRealInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, UniformCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliRoughlyFair) {
  Xoshiro256 rng(17);
  int heads = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) heads += rng.bernoulli(0.5) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.5, 0.02);
}

}  // namespace
}  // namespace turbobc
