#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace turbobc {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, AlignsColumns) {
  Table t({"col", "v"});
  t.add_row({"short", "1"});
  t.add_row({"muchlongercell", "2"});
  std::ostringstream os;
  t.print(os);
  std::istringstream in(os.str());
  std::string header, rule, r1, r2;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, r1);
  std::getline(in, r2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

}  // namespace
}  // namespace turbobc
