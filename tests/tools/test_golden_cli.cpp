// Golden-file regression tests: turbobc_cli text and JSON output pinned
// byte-for-byte on two fixed graphs (mycielski order 6 and an 8x8
// triangulated grid — both fully deterministic).
//
// On an intentional output change, regenerate with
//   TURBOBC_UPDATE_GOLDEN=1 ./test_tools --gtest_filter='GoldenCli.*'
// and review the diff under tests/golden/.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "tools/commands.hpp"

namespace turbobc::tools {
namespace {

std::string run_ok(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "turbobc_cli");
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  EXPECT_EQ(code, 0) << err.str();
  return out.str();
}

std::string golden_path(const char* name) {
  return std::string(TURBOBC_TESTS_DIR) + "/golden/" + name;
}

void expect_matches_golden(const std::string& actual, const char* name) {
  const std::string path = golden_path(name);
  if (std::getenv("TURBOBC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(path, std::ios::binary);
    f << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden file " << path
                        << " (set TURBOBC_UPDATE_GOLDEN=1 to create)";
  std::stringstream expected;
  expected << f.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "output drifted from " << name;
}

std::string mycielski_graph() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/golden_mycielski.mtx";
    run_ok({"generate", "--family", "mycielski", "--order", "6", "--out",
            p.c_str()});
    return p;
  }();
  return path;
}

std::string grid_graph() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/golden_grid.mtx";
    run_ok({"generate", "--family", "grid", "--rows", "8", "--cols", "8",
            "--out", p.c_str()});
    return p;
  }();
  return path;
}

TEST(GoldenCli, StatsTextMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(run_ok({"stats", g.c_str()}),
                        "stats_mycielski6.txt.golden");
}

TEST(GoldenCli, StatsJsonMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(run_ok({"stats", g.c_str(), "--json"}),
                        "stats_mycielski6.json.golden");
}

TEST(GoldenCli, StatsTextGrid) {
  const auto g = grid_graph();
  expect_matches_golden(run_ok({"stats", g.c_str()}),
                        "stats_grid8x8.txt.golden");
}

TEST(GoldenCli, StatsJsonGrid) {
  const auto g = grid_graph();
  expect_matches_golden(run_ok({"stats", g.c_str(), "--json"}),
                        "stats_grid8x8.json.golden");
}

TEST(GoldenCli, BcExactTextMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--edge-bc", "--verify", "--top",
              "5"}),
      "bc_mycielski6.txt.golden");
}

TEST(GoldenCli, BcExactJsonMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--edge-bc", "--verify", "--top",
              "5", "--json"}),
      "bc_mycielski6.json.golden");
}

TEST(GoldenCli, BcSingleSourceTextGrid) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--source", "9", "--verify", "--top", "5"}),
      "bc_grid8x8.txt.golden");
}

TEST(GoldenCli, BcSingleSourceJsonGrid) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--source", "9", "--verify", "--top", "5",
              "--json"}),
      "bc_grid8x8.json.golden");
}

}  // namespace
}  // namespace turbobc::tools
