// Golden-file regression tests: turbobc_cli text and JSON output pinned
// byte-for-byte on two fixed graphs (mycielski order 6 and an 8x8
// triangulated grid — both fully deterministic).
//
// On an intentional output change, regenerate with
//   TURBOBC_UPDATE_GOLDEN=1 ./test_tools --gtest_filter='GoldenCli.*'
// and review the diff under tests/golden/.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "gpusim/executor.hpp"
#include "tools/commands.hpp"

namespace turbobc::tools {
namespace {

std::string run_ok(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "turbobc_cli");
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  EXPECT_EQ(code, 0) << err.str();
  sim::ExecutorPool::instance().set_threads(1);
  return out.str();
}

/// CLI-misuse runs: must exit 2 and print prose + usage to stderr only.
/// The stderr text is golden-pinned — usage errors are part of the CLI's
/// stable surface (they must never leak file:line internals).
std::string run_usage_error(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "turbobc_cli");
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  EXPECT_EQ(code, 2) << "expected a usage error, got:\n" << out.str();
  EXPECT_TRUE(out.str().empty()) << "usage errors must not write stdout";
  sim::ExecutorPool::instance().set_threads(1);
  return err.str();
}

std::string golden_path(const char* name) {
  return std::string(TURBOBC_TESTS_DIR) + "/golden/" + name;
}

void expect_matches_golden(const std::string& actual, const char* name) {
  const std::string path = golden_path(name);
  if (std::getenv("TURBOBC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(path, std::ios::binary);
    f << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden file " << path
                        << " (set TURBOBC_UPDATE_GOLDEN=1 to create)";
  std::stringstream expected;
  expected << f.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "output drifted from " << name;
}

std::string mycielski_graph() {
  static const std::string path = [] {
    // Pid-suffixed: ctest spawns each GoldenCli case as its own process, and
    // two processes regenerating one shared file race (truncate vs read).
    const std::string p = ::testing::TempDir() + "/golden_mycielski." +
                          std::to_string(::getpid()) + ".mtx";
    run_ok({"generate", "--family", "mycielski", "--order", "6", "--out",
            p.c_str()});
    return p;
  }();
  return path;
}

std::string grid_graph() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/golden_grid." +
                          std::to_string(::getpid()) + ".mtx";
    run_ok({"generate", "--family", "grid", "--rows", "8", "--cols", "8",
            "--out", p.c_str()});
    return p;
  }();
  return path;
}

TEST(GoldenCli, StatsTextMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(run_ok({"stats", g.c_str()}),
                        "stats_mycielski6.txt.golden");
}

TEST(GoldenCli, StatsJsonMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(run_ok({"stats", g.c_str(), "--json"}),
                        "stats_mycielski6.json.golden");
}

TEST(GoldenCli, StatsTextGrid) {
  const auto g = grid_graph();
  expect_matches_golden(run_ok({"stats", g.c_str()}),
                        "stats_grid8x8.txt.golden");
}

TEST(GoldenCli, StatsJsonGrid) {
  const auto g = grid_graph();
  expect_matches_golden(run_ok({"stats", g.c_str(), "--json"}),
                        "stats_grid8x8.json.golden");
}

TEST(GoldenCli, BcExactTextMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--edge-bc", "--verify", "--top",
              "5"}),
      "bc_mycielski6.txt.golden");
}

TEST(GoldenCli, BcExactJsonMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--edge-bc", "--verify", "--top",
              "5", "--json"}),
      "bc_mycielski6.json.golden");
}

TEST(GoldenCli, BcSingleSourceTextGrid) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--source", "9", "--verify", "--top", "5"}),
      "bc_grid8x8.txt.golden");
}

TEST(GoldenCli, BcSingleSourceJsonGrid) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--source", "9", "--verify", "--top", "5",
              "--json"}),
      "bc_grid8x8.json.golden");
}

TEST(GoldenCli, ApproxTextMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"approx", g.c_str(), "--seed", "7", "--top", "5"}),
      "approx_mycielski6.txt.golden");
}

TEST(GoldenCli, ApproxJsonMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"approx", g.c_str(), "--seed", "7", "--top", "5", "--json"}),
      "approx_mycielski6.json.golden");
}

TEST(GoldenCli, ApproxJsonMycielskiIsThreadInvariant) {
  // Same invocation at pool width 8 must reproduce the width-1 golden
  // byte-for-byte: the adaptive run is bit-identical at any --threads.
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"approx", g.c_str(), "--seed", "7", "--top", "5", "--json",
              "--threads", "8"}),
      "approx_mycielski6.json.golden");
}

TEST(GoldenCli, ApproxJsonGridBatchedDegree) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"approx", g.c_str(), "--seed", "7", "--engine", "batched",
              "--sampler", "degree", "--top", "5", "--json"}),
      "approx_grid8x8.json.golden");
}

TEST(GoldenCli, InfoText) {
  expect_matches_golden(run_ok({"info"}), "info.txt.golden");
}

TEST(GoldenCli, InfoJson) {
  expect_matches_golden(run_ok({"info", "--json"}), "info.json.golden");
}

TEST(GoldenCli, InfoJsonNvlinkPair) {
  expect_matches_golden(
      run_ok({"info", "--json", "--devices", "2", "--nvlink"}),
      "info_nvlink2.json.golden");
}

TEST(GoldenCli, BcDistReplicateTextMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--devices", "4", "--verify",
              "--top", "5"}),
      "bc_dist_mycielski6.txt.golden");
}

TEST(GoldenCli, BcDistPartitionJsonGrid) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--devices", "4", "--dist",
              "partition", "--verify", "--top", "5", "--json"}),
      "bc_dist_grid8x8.json.golden");
}

TEST(GoldenCli, BcDistPartitionJsonGridIsThreadInvariant) {
  // The distributed engine inherits the repo-wide contract: the same
  // invocation at pool width 8 reproduces the width-1 golden byte-for-byte
  // (BC values, modeled/comm times, peaks, shard rows — everything).
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--devices", "4", "--dist",
              "partition", "--verify", "--top", "5", "--json", "--threads",
              "8"}),
      "bc_dist_grid8x8.json.golden");
}

TEST(GoldenCli, ErrorDistBatch) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"bc", g.c_str(), "--exact", "--batch", "4",
                       "--devices", "2"}),
      "cli_error_dist_batch.txt.golden");
}

TEST(GoldenCli, ErrorUnknownCommand) {
  expect_matches_golden(run_usage_error({"frobnicate"}),
                        "cli_error_unknown_command.txt.golden");
}

TEST(GoldenCli, ErrorMalformedFlagValue) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"approx", g.c_str(), "--epsilon", "banana"}),
      "cli_error_bad_flag.txt.golden");
}

TEST(GoldenCli, ErrorUnknownSampler) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"approx", g.c_str(), "--sampler", "random"}),
      "cli_error_unknown_sampler.txt.golden");
}

TEST(GoldenCli, ErrorNoArguments) {
  expect_matches_golden(run_usage_error({}),
                        "cli_error_no_arguments.txt.golden");
}

TEST(GoldenCli, ErrorZeroDevices) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"bc", g.c_str(), "--exact", "--devices", "0"}),
      "cli_error_devices_zero.txt.golden");
}

TEST(GoldenCli, ErrorNegativeThreads) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"bc", g.c_str(), "--exact", "--threads", "-2"}),
      "cli_error_threads_negative.txt.golden");
}

TEST(GoldenCli, ErrorTrailingGarbageBatch) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"bc", g.c_str(), "--exact", "--batch", "4x"}),
      "cli_error_batch_garbage.txt.golden");
}

TEST(GoldenCli, ErrorUnknownAdvance) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"bc", g.c_str(), "--exact", "--advance", "sideways"}),
      "cli_error_unknown_advance.txt.golden");
}

TEST(GoldenCli, BcHybridJsonMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--hybrid", "--devices", "2",
              "--verify", "--top", "5", "--json"}),
      "bc_mycielski6_hybrid.json.golden");
}

TEST(GoldenCli, BcHybridTextGrid) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--hybrid", "--verify", "--top",
              "5"}),
      "bc_grid8x8_hybrid.txt.golden");
}

TEST(GoldenCli, ErrorHybridWithoutExact) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"bc", g.c_str(), "--source", "3", "--hybrid"}),
      "cli_error_hybrid_no_exact.txt.golden");
}

TEST(GoldenCli, ErrorHybridWithDist) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"bc", g.c_str(), "--exact", "--hybrid", "--dist",
                       "partition"}),
      "cli_error_hybrid_dist.txt.golden");
}

TEST(GoldenCli, ErrorDaemonZeroReaders) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"daemon", g.c_str(), "--listen", "127.0.0.1:0",
                       "--readers", "0"}),
      "cli_error_readers_zero.txt.golden");
}

TEST(GoldenCli, ErrorDaemonZeroQueueLimit) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_usage_error({"daemon", g.c_str(), "--listen", "127.0.0.1:0",
                       "--queue-limit", "0"}),
      "cli_error_queue_limit_zero.txt.golden");
}

TEST(GoldenCli, BfsAdvanceAutoTextMycielski) {
  const auto g = mycielski_graph();
  expect_matches_golden(
      run_ok({"bfs", g.c_str(), "--source", "0", "--advance", "auto"}),
      "bfs_mycielski6_auto.txt.golden");
}

TEST(GoldenCli, BcAdvancePullJsonGrid) {
  const auto g = grid_graph();
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--source", "9", "--advance", "pull",
              "--verify", "--top", "5", "--json"}),
      "bc_grid8x8_pull.json.golden");
}

/// A fixed serve session script (query -> update -> query, both kinds plus
/// approx and stats), written once to the test temp dir.
std::string serve_script() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/golden_serve_session." +
                          std::to_string(::getpid()) + ".txt";
    std::ofstream f(p, std::ios::binary);
    f << "# golden serve session\n"
         "bc 5\n"
         "top 3\n"
         "insert 0 5\n"
         "bc 5\n"
         "delete 0 5\n"
         "top 3\n"
         "approx 0.5 0.2\n"
         "stats\n";
    return p;
  }();
  return path;
}

TEST(GoldenCli, ServeSessionTextMycielski) {
  const auto g = mycielski_graph();
  const auto s = serve_script();
  expect_matches_golden(
      run_ok({"serve", g.c_str(), "--script", s.c_str()}),
      "serve_mycielski6.txt.golden");
}

TEST(GoldenCli, ServeSessionJsonMycielski) {
  const auto g = mycielski_graph();
  const auto s = serve_script();
  expect_matches_golden(
      run_ok({"serve", g.c_str(), "--script", s.c_str(), "--json"}),
      "serve_mycielski6.json.golden");
}

TEST(GoldenCli, ServeSessionJsonMycielskiIsThreadInvariant) {
  // The serving engine inherits the repo-wide contract: the same session at
  // pool width 8 reproduces the width-1 golden byte-for-byte — cached
  // blocks, recompute costs, approx waves, modeled stats and all.
  const auto g = mycielski_graph();
  const auto s = serve_script();
  expect_matches_golden(
      run_ok({"serve", g.c_str(), "--script", s.c_str(), "--json",
              "--threads", "8"}),
      "serve_mycielski6.json.golden");
}

TEST(GoldenCli, ServeSessionJsonGrid) {
  const auto g = grid_graph();
  const auto s = serve_script();
  expect_matches_golden(
      run_ok({"serve", g.c_str(), "--script", s.c_str(), "--json"}),
      "serve_grid8x8.json.golden");
}

/// Misuse scripts: exit 2, empty stdout, golden-pinned stderr — the whole
/// script is parsed before anything executes, so nothing leaks.
std::string misuse_script(const char* name, const char* text) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::ofstream f(p, std::ios::binary);
  f << text;
  return p;
}

TEST(GoldenCli, ErrorServeUnknownCommand) {
  const auto g = mycielski_graph();
  const auto s =
      misuse_script("serve_bad_cmd.txt", "bc 3\nfrobnicate 1 2\n");
  expect_matches_golden(
      run_usage_error({"serve", g.c_str(), "--script", s.c_str()}),
      "cli_error_serve_unknown_command.txt.golden");
}

TEST(GoldenCli, ErrorServeInsertArity) {
  const auto g = mycielski_graph();
  const auto s = misuse_script("serve_bad_arity.txt", "insert 3\n");
  expect_matches_golden(
      run_usage_error({"serve", g.c_str(), "--script", s.c_str()}),
      "cli_error_serve_insert_arity.txt.golden");
}

TEST(GoldenCli, ErrorServeVertexOutOfRange) {
  const auto g = mycielski_graph();
  const auto s = misuse_script("serve_bad_vertex.txt", "delete 0 4711\n");
  expect_matches_golden(
      run_usage_error({"serve", g.c_str(), "--script", s.c_str()}),
      "cli_error_serve_vertex_range.txt.golden");
}

TEST(GoldenCli, ErrorServeEpsilonOutOfRange) {
  const auto g = mycielski_graph();
  const auto s = misuse_script("serve_bad_epsilon.txt", "approx 2.5\n");
  expect_matches_golden(
      run_usage_error({"serve", g.c_str(), "--script", s.c_str()}),
      "cli_error_serve_epsilon_range.txt.golden");
}

TEST(GoldenCli, BcAdvanceAutoJsonGridIsThreadInvariant) {
  // The direction-optimizing engine inherits the repo-wide determinism
  // contract: --advance auto at pool width 8 must reproduce the width-1
  // golden byte-for-byte.
  const auto g = grid_graph();
  const char* golden = "bc_grid8x8_auto_exact.json.golden";
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--advance", "auto", "--verify",
              "--top", "5", "--json"}),
      golden);
  expect_matches_golden(
      run_ok({"bc", g.c_str(), "--exact", "--advance", "auto", "--verify",
              "--top", "5", "--json", "--threads", "8"}),
      golden);
}

}  // namespace
}  // namespace turbobc::tools
