#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "tools/commands.hpp"

namespace turbobc::tools {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(std::initializer_list<const char*> argv) {
  std::vector<const char*> v = {"turbobc_cli"};
  v.insert(v.end(), argv);
  const CliArgs args(static_cast<int>(v.size()), v.data());
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string temp_mtx(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Cli, NoArgsPrintsUsage) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateWritesAReadableGraph) {
  const std::string path = temp_mtx("cli_gen.mtx");
  const auto r = run({"generate", "--family", "mycielski", "--order", "7",
                      "--out", path.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote"), std::string::npos);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
}

TEST(Cli, GenerateRejectsUnknownFamily) {
  const auto r = run({"generate", "--family", "nonsense", "--out", "/tmp/x"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, GeneratePreferentialFamily) {
  const std::string path = temp_mtx("cli_gen_pref.mtx");
  const auto r = run({"generate", "--family", "preferential", "--n", "300",
                      "--m-attach", "2", "--out", path.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
}

TEST(Cli, ApproxRunsWithBudgetAndReportsHonestly) {
  const std::string path = temp_mtx("cli_approx_cmd.mtx");
  ASSERT_EQ(run({"generate", "--family", "preferential", "--n", "400",
                 "--m-attach", "3", "--out", path.c_str()})
                .code,
            0);
  const auto r =
      run({"approx", path.c_str(), "--max-sources", "64", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"mode\": \"approx\""), std::string::npos);
  EXPECT_NE(r.out.find("\"sources_used\": 64"), std::string::npos);
  EXPECT_NE(r.out.find("\"converged\": false"), std::string::npos)
      << "a 64-pivot budget cannot meet the default target on n = 400";
}

TEST(Cli, ApproxValidatesFlagDomains) {
  const std::string path = temp_mtx("cli_approx_domain.mtx");
  ASSERT_EQ(run({"generate", "--family", "mycielski", "--order", "5",
                 "--out", path.c_str()})
                .code,
            0);
  const auto eps = run({"approx", path.c_str(), "--epsilon", "0"});
  EXPECT_EQ(eps.code, 2);
  EXPECT_NE(eps.err.find("--epsilon must be positive"), std::string::npos);
  const auto delta = run({"approx", path.c_str(), "--delta", "1.5"});
  EXPECT_EQ(delta.code, 2);
  const auto topk = run({"approx", path.c_str(), "--topk", "-3"});
  EXPECT_EQ(topk.code, 2);
}

TEST(Cli, GenerateRequiresOut) {
  const auto r = run({"generate", "--family", "mycielski"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, StatsReportsStructure) {
  const std::string path = temp_mtx("cli_stats.mtx");
  ASSERT_EQ(run({"generate", "--family", "grid", "--rows", "12", "--cols",
                 "12", "--out", path.c_str()})
                .code,
            0);
  const auto r = run({"stats", path.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("vertices"), std::string::npos);
  EXPECT_NE(r.out.find("regular"), std::string::npos);
  EXPECT_NE(r.out.find("scCSC"), std::string::npos);
}

TEST(Cli, StatsOnMissingFileFailsGracefully) {
  const auto r = run({"stats", "/nonexistent/never.mtx"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, BfsPrintsDepthHistogram) {
  const std::string path = temp_mtx("cli_bfs.mtx");
  ASSERT_EQ(run({"generate", "--family", "smallworld", "--n", "300", "--k",
                 "6", "--out", path.c_str()})
                .code,
            0);
  const auto r = run({"bfs", path.c_str(), "--source", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("BFS from 5"), std::string::npos);
  EXPECT_NE(r.out.find("depth"), std::string::npos);
  EXPECT_NE(r.out.find("reached 300/300"), std::string::npos);
}

TEST(Cli, BcSingleSourceVerifies) {
  const std::string path = temp_mtx("cli_bc.mtx");
  ASSERT_EQ(run({"generate", "--family", "erdos-renyi", "--n", "150",
                 "--arcs", "700", "--out", path.c_str()})
                .code,
            0);
  const auto r = run({"bc", path.c_str(), "--source", "3", "--verify"});
  EXPECT_EQ(r.code, 0) << r.out + r.err;
  EXPECT_NE(r.out.find("(OK)"), std::string::npos);
  EXPECT_NE(r.out.find("single-source"), std::string::npos);
}

TEST(Cli, BcExactWithEdgeBc) {
  const std::string path = temp_mtx("cli_bc_exact.mtx");
  ASSERT_EQ(run({"generate", "--family", "mycielski", "--order", "6",
                 "--out", path.c_str()})
                .code,
            0);
  const auto r = run({"bc", path.c_str(), "--exact", "--edge-bc", "--verify",
                      "--top", "5"});
  EXPECT_EQ(r.code, 0) << r.out + r.err;
  EXPECT_NE(r.out.find("exact BC"), std::string::npos);
  EXPECT_NE(r.out.find("edge BC computed"), std::string::npos);
  EXPECT_NE(r.out.find("(OK)"), std::string::npos);
}

TEST(Cli, BcExactBatchedVerifies) {
  const std::string path = temp_mtx("cli_bc_batch.mtx");
  ASSERT_EQ(run({"generate", "--family", "smallworld", "--n", "80", "--k",
                 "4", "--out", path.c_str()})
                .code,
            0);
  const auto r = run({"bc", path.c_str(), "--exact", "--batch", "8",
                      "--verify"});
  EXPECT_EQ(r.code, 0) << r.out + r.err;
  EXPECT_NE(r.out.find("batched x8"), std::string::npos);
  EXPECT_NE(r.out.find("(OK)"), std::string::npos);
}

TEST(Cli, BcApproximateRuns) {
  const std::string path = temp_mtx("cli_bc_approx.mtx");
  ASSERT_EQ(run({"generate", "--family", "smallworld", "--n", "200", "--k",
                 "6", "--out", path.c_str()})
                .code,
            0);
  const auto r = run({"bc", path.c_str(), "--approx", "16"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("approximate (16 sources)"), std::string::npos);
}

TEST(Cli, BcVariantOverrideAndAutotune) {
  const std::string path = temp_mtx("cli_bc_var.mtx");
  ASSERT_EQ(run({"generate", "--family", "mycielski", "--order", "8",
                 "--out", path.c_str()})
                .code,
            0);
  for (const char* v : {"sccooc", "sccsc", "vecsc", "autotune"}) {
    const auto r = run({"bc", path.c_str(), "--variant", v, "--verify"});
    EXPECT_EQ(r.code, 0) << v << ": " << r.err;
    EXPECT_NE(r.out.find("(OK)"), std::string::npos) << v;
  }
  // Unknown variants are CLI misuse: exit 2 with the usage text, like every
  // other malformed flag.
  const auto bad = run({"bc", path.c_str(), "--variant", "bogus"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("unknown variant 'bogus'"), std::string::npos);
  EXPECT_NE(bad.err.find("usage:"), std::string::npos);
}

TEST(Cli, BcTraceWritesJson) {
  const std::string path = temp_mtx("cli_bc_trace.mtx");
  const std::string trace = ::testing::TempDir() + "/cli_trace.json";
  ASSERT_EQ(run({"generate", "--family", "grid", "--rows", "8", "--cols",
                 "8", "--out", path.c_str()})
                .code,
            0);
  const auto r = run({"bc", path.c_str(), "--trace", trace.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(trace);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace turbobc::tools
