#include <gtest/gtest.h>

#include <vector>

#include "generators/generators.hpp"
#include "gpusim/kernel.hpp"
#include "spmv/device_graph.hpp"
#include "spmv/spmv_kernels.hpp"
#include "spmv/spmv_seq.hpp"

namespace turbobc::spmv {
namespace {

using graph::CoocGraph;
using graph::CscGraph;
using graph::EdgeList;

/// Dense oracle for y(v) = sum_{u -> v} x(u) (the A^T x gather).
template <typename T>
std::vector<T> dense_gather(const EdgeList& el, const std::vector<T>& x) {
  std::vector<T> y(static_cast<std::size_t>(el.num_vertices()), 0);
  for (const graph::Edge& e : el.edges()) {
    y[static_cast<std::size_t>(e.v)] += x[static_cast<std::size_t>(e.u)];
  }
  return y;
}

/// Dense oracle for y(u) += sum_{u -> v} x(v) (the A x scatter/out-sum).
template <typename T>
std::vector<T> dense_scatter(const EdgeList& el, const std::vector<T>& x) {
  std::vector<T> y(static_cast<std::size_t>(el.num_vertices()), 0);
  for (const graph::Edge& e : el.edges()) {
    y[static_cast<std::size_t>(e.u)] += x[static_cast<std::size_t>(e.v)];
  }
  return y;
}

std::string variant_suffix(const ::testing::TestParamInfo<int>& info) {
  const char* names[] = {"scCOOC", "scCSC", "veCSC"};
  return names[info.param];
}

EdgeList test_graph(std::uint64_t seed, bool directed) {
  return gen::erdos_renyi({.n = 120, .arcs = 700, .directed = directed,
                           .seed = seed});
}

// ------------------------------------------------------ sequential oracles

TEST(SeqSpmv, CoocMatchesDenseGatherForPositiveX) {
  const auto el = test_graph(1, true);
  const auto cooc = CoocGraph::from_edges(el);
  std::vector<sigma_t> x(120);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = (i % 3 == 0) ? i + 1 : 0;
  std::vector<sigma_t> y(120, 0);
  seq_spmv_cooc<sigma_t>(cooc, x, y);
  EXPECT_EQ(y, dense_gather(el, x));
}

TEST(SeqSpmv, CscMaskedSkipsDiscoveredColumns) {
  const auto el = test_graph(2, true);
  const auto csc = CscGraph::from_edges(el);
  std::vector<sigma_t> x(120, 1);
  std::vector<sigma_t> sigma(120, 0);
  for (std::size_t i = 0; i < 120; i += 2) sigma[i] = 5;  // mask even columns
  std::vector<sigma_t> y(120, 0);
  seq_spmv_csc_masked<sigma_t, sigma_t>(csc, x, sigma, y);
  const auto full = dense_gather(el, x);
  for (std::size_t v = 0; v < 120; ++v) {
    EXPECT_EQ(y[v], sigma[v] == 0 ? full[v] : 0) << v;
  }
}

TEST(SeqSpmv, CscUnmaskedMatchesDenseGather) {
  const auto el = test_graph(3, true);
  const auto csc = CscGraph::from_edges(el);
  std::vector<double> x(120);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.25 * static_cast<double>(i % 7);
  std::vector<double> y(120, 0);
  seq_spmv_csc<double>(csc, x, y);
  const auto expect = dense_gather(el, x);
  for (std::size_t v = 0; v < 120; ++v) EXPECT_DOUBLE_EQ(y[v], expect[v]);
}

TEST(SeqSpmv, CscScatterMatchesDenseOutSum) {
  const auto el = test_graph(4, true);
  const auto csc = CscGraph::from_edges(el);
  std::vector<double> x(120);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 5);
  std::vector<double> y(120, 0);
  seq_spmv_csc_scatter<double>(csc, x, y);
  const auto expect = dense_scatter(el, x);
  for (std::size_t v = 0; v < 120; ++v) EXPECT_DOUBLE_EQ(y[v], expect[v]);
}

TEST(SeqSpmv, GatherEqualsScatterOnSymmetricMatrices) {
  const auto el = test_graph(5, false);  // undirected = symmetric
  const auto csc = CscGraph::from_edges(el);
  std::vector<double> x(120);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  std::vector<double> g(120, 0), s(120, 0);
  seq_spmv_csc<double>(csc, x, g);
  seq_spmv_csc_scatter<double>(csc, x, s);
  for (std::size_t v = 0; v < 120; ++v) EXPECT_DOUBLE_EQ(g[v], s[v]);
}

// --------------------------------------------------- simulated GPU kernels

/// Forward-kernel fixture parameterized over the three TurboBC variants.
class ForwardKernel : public ::testing::TestWithParam<int> {};

TEST_P(ForwardKernel, MatchesMaskedSequentialReference) {
  for (const bool directed : {true, false}) {
    for (std::uint64_t seed = 10; seed < 13; ++seed) {
      const auto el = test_graph(seed, directed);
      const auto n = static_cast<std::size_t>(el.num_vertices());
      sim::Device dev;

      std::vector<sigma_t> x(n), sigma(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = (i * seed) % 4;         // sparse-ish frontier
        sigma[i] = (i % 5 == 0) ? 1 : 0;  // mask some columns
      }

      sim::DeviceBuffer<sigma_t> xd(dev, n, "x"), yd(dev, n, "y"),
          sd(dev, n, "sigma");
      xd.copy_from_host(x);
      sd.copy_from_host(sigma);
      yd.device_fill(0);

      // The CSC variants fuse the sigma mask (Algorithm 3); the COOC variant
      // is Algorithm 2 verbatim — unmasked (the pipeline masks afterwards).
      const auto csc = CscGraph::from_edges(el);
      std::vector<sigma_t> expect(n, 0);
      if (GetParam() == 0) {
        for (const graph::Edge& e : el.edges()) {
          if (x[static_cast<std::size_t>(e.u)] > 0) {
            expect[static_cast<std::size_t>(e.v)] +=
                x[static_cast<std::size_t>(e.u)];
          }
        }
      } else {
        seq_spmv_csc_masked<sigma_t, sigma_t>(csc, x, sigma, expect);
      }

      switch (GetParam()) {
        case 0: {
          DeviceCooc g(dev, CoocGraph::from_edges(el));
          spmv_forward_sccooc(dev, g, xd, yd);
          break;
        }
        case 1: {
          DeviceCsc g(dev, csc);
          spmv_forward_sccsc(dev, g, xd, yd, sd);
          break;
        }
        case 2: {
          DeviceCsc g(dev, csc);
          spmv_forward_vecsc(dev, g, xd, yd, sd);
          break;
        }
      }
      EXPECT_EQ(yd.host(), expect)
          << "variant " << GetParam() << " directed " << directed << " seed "
          << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ForwardKernel,
                         ::testing::Values(0, 1, 2),
                         variant_suffix);

class BackwardGatherKernel : public ::testing::TestWithParam<int> {};

TEST_P(BackwardGatherKernel, MatchesUnmaskedGatherReference) {
  const auto el = test_graph(20, false);
  const auto n = static_cast<std::size_t>(el.num_vertices());
  sim::Device dev;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = (i % 4 == 0) ? 1.0 / (1 + i) : 0.0;

  sim::DeviceBuffer<double> xd(dev, n, "x"), yd(dev, n, "y");
  xd.copy_from_host(x);
  yd.device_fill(0.0);

  const auto csc = CscGraph::from_edges(el);
  std::vector<double> expect(n, 0.0);
  seq_spmv_csc<double>(csc, x, expect);

  switch (GetParam()) {
    case 0: {
      DeviceCooc g(dev, CoocGraph::from_edges(el));
      spmv_backward_gather_sccooc(dev, g, xd, yd);
      break;
    }
    case 1: {
      DeviceCsc g(dev, csc);
      spmv_backward_gather_sccsc(dev, g, xd, yd);
      break;
    }
    case 2: {
      DeviceCsc g(dev, csc);
      spmv_backward_gather_vecsc(dev, g, xd, yd);
      break;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_NEAR(yd.host()[v], expect[v], 1e-12) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BackwardGatherKernel,
                         ::testing::Values(0, 1, 2),
                         variant_suffix);

class BackwardScatterKernel : public ::testing::TestWithParam<int> {};

TEST_P(BackwardScatterKernel, MatchesOutNeighbourSums) {
  const auto el = test_graph(30, true);  // directed: scatter semantics
  const auto n = static_cast<std::size_t>(el.num_vertices());
  sim::Device dev;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = (i % 3 == 0) ? 0.5 + i : 0.0;

  sim::DeviceBuffer<double> xd(dev, n, "x"), yd(dev, n, "y");
  xd.copy_from_host(x);
  yd.device_fill(0.0);

  std::vector<double> expect = dense_scatter(el, x);

  switch (GetParam()) {
    case 0: {
      DeviceCooc g(dev, CoocGraph::from_edges(el));
      spmv_backward_scatter_sccooc(dev, g, xd, yd);
      break;
    }
    case 1: {
      DeviceCsc g(dev, CscGraph::from_edges(el));
      spmv_backward_scatter_sccsc(dev, g, xd, yd);
      break;
    }
    case 2: {
      DeviceCsc g(dev, CscGraph::from_edges(el));
      spmv_backward_scatter_vecsc(dev, g, xd, yd);
      break;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_NEAR(yd.host()[v], expect[v], 1e-12) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BackwardScatterKernel,
                         ::testing::Values(0, 1, 2),
                         variant_suffix);

// ----------------------------------------------------- performance shapes

TEST(SpmvCost, VeCscBeatsScCscOnHubColumns) {
  // One mega-degree column: the scalar kernel's warp stalls on the fat
  // column (critical path ~ degree), the warp-per-column kernel strides it.
  EdgeList el(2000, true);
  for (vidx_t u = 1; u < 2000; ++u) el.add_edge(u, 0);
  el.symmetrize();
  const auto csc = CscGraph::from_edges(el);

  std::vector<sigma_t> x(2000, 1), sigma(2000, 0);
  double sc_time, ve_time;
  {
    sim::Device dev;
    DeviceCsc g(dev, csc);
    sim::DeviceBuffer<sigma_t> xd(dev, 2000, "x"), yd(dev, 2000, "y"),
        sd(dev, 2000, "s");
    xd.copy_from_host(x);
    sd.copy_from_host(sigma);
    yd.device_fill(0);
    spmv_forward_sccsc(dev, g, xd, yd, sd);
    sc_time = dev.launches().back().time_s;
  }
  {
    sim::Device dev;
    DeviceCsc g(dev, csc);
    sim::DeviceBuffer<sigma_t> xd(dev, 2000, "x"), yd(dev, 2000, "y"),
        sd(dev, 2000, "s");
    xd.copy_from_host(x);
    sd.copy_from_host(sigma);
    yd.device_fill(0);
    spmv_forward_vecsc(dev, g, xd, yd, sd);
    ve_time = dev.launches().back().time_s;
  }
  EXPECT_LT(ve_time, sc_time);
}

TEST(SpmvCost, DeviceGraphRejectsOversizedPointers) {
  // Construction must check the 32-bit column-pointer bound. (We cannot
  // build a >2^31-nonzero graph in a test; assert the check exists by
  // confirming normal graphs pass.)
  sim::Device dev;
  const auto el = test_graph(40, true);
  EXPECT_NO_THROW(DeviceCsc(dev, CscGraph::from_edges(el)));
}

}  // namespace
}  // namespace turbobc::spmv
