// Boundary conditions for the device graph wrappers and SpMV kernels.
#include <gtest/gtest.h>

#include "generators/generators.hpp"
#include "gpusim/kernel.hpp"
#include "spmv/device_graph.hpp"
#include "spmv/spmv_kernels.hpp"

namespace turbobc::spmv {
namespace {

using graph::CoocGraph;
using graph::CscGraph;
using graph::EdgeList;

TEST(SpmvEdgeCases, EdgelessGraphProducesZeroOutput) {
  EdgeList el(5, true);  // no edges at all
  sim::Device dev;
  DeviceCsc g(dev, CscGraph::from_edges(el));
  sim::DeviceBuffer<sigma_t> x(dev, 5, "x"), y(dev, 5, "y"), s(dev, 5, "s");
  x.device_fill(1);
  s.device_fill(0);
  y.device_fill(0);
  spmv_forward_sccsc(dev, g, x, y, s);
  for (const sigma_t v : y.host()) EXPECT_EQ(v, 0);

  DeviceCooc gc(dev, CoocGraph::from_edges(el));
  EXPECT_EQ(gc.m(), 0);
  spmv_forward_sccooc(dev, gc, x, y);  // zero-thread launch must be a no-op
  for (const sigma_t v : y.host()) EXPECT_EQ(v, 0);
}

TEST(SpmvEdgeCases, SingleEdgeGraph) {
  EdgeList el(2, true);
  el.add_edge(0, 1);
  sim::Device dev;
  DeviceCsc g(dev, CscGraph::from_edges(el));
  sim::DeviceBuffer<sigma_t> x(dev, 2, "x"), y(dev, 2, "y"), s(dev, 2, "s");
  x.host() = {3, 0};
  s.device_fill(0);
  y.device_fill(0);
  spmv_forward_sccsc(dev, g, x, y, s);
  EXPECT_EQ(y.host()[0], 0);
  EXPECT_EQ(y.host()[1], 3);
}

TEST(SpmvEdgeCases, VeCscHandlesFewerColumnsThanWarps) {
  // n far below the grid size: grid-stride must not touch out-of-range
  // columns.
  EdgeList el(3, true);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.symmetrize();
  sim::Device dev;
  DeviceCsc g(dev, CscGraph::from_edges(el));
  sim::DeviceBuffer<sigma_t> x(dev, 3, "x"), y(dev, 3, "y"), s(dev, 3, "s");
  x.device_fill(1);
  s.device_fill(0);
  y.device_fill(0);
  spmv_forward_vecsc(dev, g, x, y, s);
  EXPECT_EQ(y.host()[0], 1);
  EXPECT_EQ(y.host()[1], 2);
  EXPECT_EQ(y.host()[2], 1);
}

TEST(SpmvEdgeCases, VeCscColumnLargerThanWarp) {
  // A single column with 100 in-neighbours: multiple stride iterations plus
  // a partial final mask.
  EdgeList el(101, true);
  for (vidx_t u = 1; u <= 100; ++u) el.add_edge(u, 0);
  sim::Device dev;
  DeviceCsc g(dev, CscGraph::from_edges(el));
  sim::DeviceBuffer<sigma_t> x(dev, 101, "x"), y(dev, 101, "y"),
      s(dev, 101, "s");
  x.device_fill(1);
  s.device_fill(0);
  y.device_fill(0);
  spmv_forward_vecsc(dev, g, x, y, s);
  EXPECT_EQ(y.host()[0], 100);
}

TEST(SpmvEdgeCases, MaskSuppressesDiscoveredColumnsEverywhere) {
  const auto el = gen::erdos_renyi({.n = 64, .arcs = 400, .directed = false,
                                    .seed = 97});
  sim::Device dev;
  DeviceCsc g(dev, CscGraph::from_edges(el));
  sim::DeviceBuffer<sigma_t> x(dev, 64, "x"), y1(dev, 64, "y1"),
      y2(dev, 64, "y2"), s(dev, 64, "s");
  x.device_fill(1);
  s.device_fill(1);  // everything already discovered
  y1.device_fill(0);
  y2.device_fill(0);
  spmv_forward_sccsc(dev, g, x, y1, s);
  spmv_forward_vecsc(dev, g, x, y2, s);
  for (int v = 0; v < 64; ++v) {
    EXPECT_EQ(y1.host()[static_cast<std::size_t>(v)], 0);
    EXPECT_EQ(y2.host()[static_cast<std::size_t>(v)], 0);
  }
}

TEST(SpmvEdgeCases, BackwardScatterOnVertexWithNoInNeighbours) {
  // Scatter from a column with an empty range must be a no-op.
  EdgeList el(3, true);
  el.add_edge(0, 1);  // vertex 2: no in-edges, no out-edges
  sim::Device dev;
  DeviceCsc g(dev, CscGraph::from_edges(el));
  sim::DeviceBuffer<double> x(dev, 3, "x"), y(dev, 3, "y");
  x.host() = {0.0, 0.0, 5.0};
  y.device_fill(0.0);
  spmv_backward_scatter_sccsc(dev, g, x, y);
  for (const double v : y.host()) EXPECT_EQ(v, 0.0);
}

TEST(SpmvEdgeCases, GridWarpsCapAtDeviceWidth) {
  sim::Device dev;
  EXPECT_EQ(vecsc_grid_warps(dev, 10), 10u);
  const auto full = static_cast<std::uint64_t>(
      dev.props().sm_count * dev.props().issue_slots_per_sm * 32);
  EXPECT_EQ(vecsc_grid_warps(dev, 1 << 30), full);
}

}  // namespace
}  // namespace turbobc::spmv
