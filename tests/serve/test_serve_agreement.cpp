// End-to-end serving agreement, the acceptance bar for src/serve/: on every
// generator family, drive a 52-event random insert/delete stream and prove
//
//   1. after EVERY event the incrementally-maintained full BC is
//      bit-identical to a from-scratch TurboBC::run_exact() on the mutated
//      graph (pool width 8 — the fan-out path), and
//   2. the per-event BC stream at pool width 1 is byte-identical to the
//      width-8 stream (hexfloat serialization of every value).
//
// Together: serve == scratch at width 8, width 1 == width 8, hence serve is
// bit-identical to scratch exact BC at both widths over the whole stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "graph/edge_list.hpp"
#include "qa/fuzz_case.hpp"
#include "serve/serve_engine.hpp"

namespace turbobc::serve {
namespace {

constexpr int kEvents = 52;

struct Event {
  UpdateKind kind = UpdateKind::kInsert;
  vidx_t u = 0, v = 0;
};

/// The stream is a pure function of the family graph: deletes target an arc
/// index of the CURRENT graph, so both pool-width replays (which mutate
/// identically) resolve the same edges.
Event next_event(Xoshiro256& rng, const graph::EdgeList& g, int index) {
  Event e;
  if (index % 2 == 1 && g.num_arcs() > 0) {
    e.kind = UpdateKind::kDelete;
    const graph::Edge edge = g.edges()[static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(g.edges().size())))];
    e.u = edge.u;
    e.v = edge.v;
  } else {
    const auto n = static_cast<std::uint64_t>(g.num_vertices());
    e.kind = UpdateKind::kInsert;
    e.u = static_cast<vidx_t>(rng.uniform(n));
    e.v = static_cast<vidx_t>(rng.uniform(n));
  }
  return e;
}

void append_hex(std::string& transcript, const std::vector<bc_t>& bc) {
  char buf[40];
  for (const bc_t x : bc) {
    std::snprintf(buf, sizeof buf, "%a ", x);
    transcript += buf;
  }
  transcript += '\n';
}

/// Run the stream at the given pool width; returns the hexfloat transcript
/// of every post-event BC vector. With `scratch_check`, each vector is also
/// compared bit-for-bit against a fresh run_exact on the mutated graph.
std::string run_stream(qa::Family family, unsigned width,
                       bool scratch_check) {
  sim::ExecutorPool::instance().set_threads(width);
  qa::FuzzCase c;
  c.family = family;
  c.seed = 11;
  c.size_class = 0;
  graph::EdgeList g = qa::build_graph(c);
  g.canonicalize();
  ServeEngine engine(std::move(g));

  std::string transcript;
  Xoshiro256 rng(0xa9eeULL + static_cast<std::uint64_t>(engine.num_arcs()));
  for (int event = 0; event < kEvents; ++event) {
    const Event e = next_event(rng, engine.graph(), event);
    engine.apply_update(e.kind, e.u, e.v);
    const std::vector<bc_t>& served = engine.query_bc();
    append_hex(transcript, served);
    if (scratch_check) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC scratch(dev, engine.graph(),
                          {.variant = engine.options().variant});
      const std::vector<bc_t> ref = scratch.run_exact().bc;
      if (served != ref) {
        ADD_FAILURE() << "served BC diverged from scratch after event "
                      << event << " ("
                      << (e.kind == UpdateKind::kInsert ? "insert"
                                                        : "delete")
                      << " " << e.u << " " << e.v << ") on "
                      << qa::to_string(family);
        break;
      }
    }
  }
  sim::ExecutorPool::instance().set_threads(1);
  EXPECT_GE(engine.counters().updates + engine.counters().noop_updates,
            static_cast<std::uint64_t>(kEvents));
  return transcript;
}

class ServeAgreement : public ::testing::TestWithParam<qa::Family> {};

TEST_P(ServeAgreement, FiftyTwoEventStreamBitIdenticalAtWidths1And8) {
  const qa::Family family = GetParam();
  const std::string wide = run_stream(family, 8, /*scratch_check=*/true);
  if (::testing::Test::HasFailure()) return;
  const std::string serial = run_stream(family, 1, /*scratch_check=*/false);
  EXPECT_EQ(serial, wide)
      << "per-event BC stream differs between pool widths 1 and 8 on "
      << qa::to_string(family);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ServeAgreement,
                         ::testing::ValuesIn(qa::kGeneratorFamilies),
                         [](const auto& info) {
                           return std::string(qa::to_string(info.param));
                         });

}  // namespace
}  // namespace turbobc::serve
