// Property test for the serving engine's cone invalidation rule, across
// every generator family, both orientations, and both update kinds:
//
//   for every source s OUTSIDE the cone of an edge update, the cached
//   dependency block is BYTE-identical to a from-scratch
//   run_single_source(s) on the post-update graph,
//
// i.e. the cone test is sound — what it keeps, a full recompute would
// reproduce bit for bit — and the engine's block_valid flags match the
// update_affects_source predicate evaluated on the pre-update depths.
// (In-cone sources carry no claim: they are recomputed on demand.)
#include <gtest/gtest.h>

#include <vector>

#include "common/prng.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"
#include "qa/fuzz_case.hpp"
#include "serve/serve_engine.hpp"

namespace turbobc::serve {
namespace {

/// The family's size-0 graph forced to the requested orientation: directed
/// keeps/marks every arc as one-way; undirected symmetrizes.
graph::EdgeList family_graph(qa::Family family, bool directed) {
  qa::FuzzCase c;
  c.family = family;
  c.seed = 7;
  c.size_class = 0;
  graph::EdgeList g = qa::build_graph(c);
  g.canonicalize();
  if (directed == g.directed()) return g;
  if (!directed) {
    g.symmetrize();
    return g;
  }
  graph::EdgeList d(g.num_vertices(), true);
  for (const graph::Edge& e : g.edges()) d.add_edge(e.u, e.v);
  d.canonicalize();
  return d;
}

/// One update event: warm every block, apply the event, then check flag
/// correctness and out-of-cone byte-identity against scratch recomputes on
/// the mutated graph.
void check_event(ServeEngine& engine, UpdateKind kind, vidx_t u, vidx_t v) {
  const vidx_t n = engine.num_vertices();
  engine.query_bc();  // warm all blocks
  ASSERT_EQ(engine.valid_blocks(), n);

  // Pre-update depths and blocks, per source.
  std::vector<std::vector<vidx_t>> depth(static_cast<std::size_t>(n));
  std::vector<std::vector<bc_t>> cached(static_cast<std::size_t>(n));
  for (vidx_t s = 0; s < n; ++s) {
    depth[static_cast<std::size_t>(s)] = engine.depths(s);
    cached[static_cast<std::size_t>(s)] = engine.block(s);
  }

  const bool directed = engine.directed();
  const UpdateStats stats = engine.apply_update(kind, u, v);
  if (!stats.applied) return;  // no-op events assert nothing here

  sim::Device dev;
  bc::TurboBC scratch(dev, engine.graph(),
                      {.variant = engine.options().variant});
  for (vidx_t s = 0; s < n; ++s) {
    const auto& d = depth[static_cast<std::size_t>(s)];
    const bool in_cone = update_affects_source(
        d[static_cast<std::size_t>(u)], d[static_cast<std::size_t>(v)], kind,
        directed);
    ASSERT_EQ(engine.block_valid(s), !in_cone)
        << "block flag disagrees with the cone predicate: source " << s
        << ", edge (" << u << ", " << v << "), "
        << (kind == UpdateKind::kInsert ? "insert" : "delete");
    if (in_cone) continue;
    ASSERT_EQ(cached[static_cast<std::size_t>(s)],
              scratch.run_single_source(s).bc)
        << "out-of-cone block not byte-identical after recompute: source "
        << s << ", edge (" << u << ", " << v << "), "
        << (kind == UpdateKind::kInsert ? "insert" : "delete");
  }
}

class ServeConeProperty
    : public ::testing::TestWithParam<std::tuple<qa::Family, bool>> {};

TEST_P(ServeConeProperty, OutOfConeBlocksAreByteIdentical) {
  const auto [family, directed] = GetParam();
  graph::EdgeList g = family_graph(family, directed);
  const vidx_t n = g.num_vertices();
  ASSERT_GT(n, 1);
  ServeEngine engine(std::move(g));

  Xoshiro256 rng(0xc0eULL + static_cast<std::uint64_t>(n));
  const auto rand_vertex = [&] {
    return static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
  };
  // Two inserts of random pairs and two deletes of existing arcs — each
  // event re-warms the cache, so every event checks against a fully valid
  // pre-state.
  for (int i = 0; i < 2; ++i) {
    check_event(engine, UpdateKind::kInsert, rand_vertex(), rand_vertex());
    if (engine.num_arcs() > 0) {
      const auto& edges = engine.graph().edges();
      const graph::Edge e = edges[static_cast<std::size_t>(
          rng.uniform(static_cast<std::uint64_t>(edges.size())))];
      check_event(engine, UpdateKind::kDelete, e.u, e.v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ServeConeProperty,
    ::testing::Combine(::testing::ValuesIn(qa::kGeneratorFamilies),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(qa::to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_directed" : "_undirected");
    });

}  // namespace
}  // namespace turbobc::serve
