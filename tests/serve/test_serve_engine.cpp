// Unit tests for the dynamic-graph serving engine: cone-test truth table,
// cache behavior across updates, counters, bit-identity of served BC, the
// component-cache invalidation hook, and the session script runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "graph/edge_list.hpp"
#include "serve/serve_engine.hpp"
#include "serve/session.hpp"

namespace turbobc::serve {
namespace {

/// 0-1-2-3-4 path, undirected (both arcs per edge).
graph::EdgeList path5() {
  graph::EdgeList g(5, false);
  for (vidx_t v = 0; v + 1 < 5; ++v) {
    g.add_edge(v, v + 1);
    g.add_edge(v + 1, v);
  }
  g.canonicalize();
  return g;
}

/// Directed chain 0 -> 1 -> 2 -> 3 plus a spare vertex 4.
graph::EdgeList chain4_plus_isolated() {
  graph::EdgeList g(5, true);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.canonicalize();
  return g;
}

std::vector<bc_t> scratch_exact(const graph::EdgeList& g) {
  sim::Device dev;
  bc::TurboBC algo(dev, g, {.variant = bc::Variant::kScCsc});
  return algo.run_exact().bc;
}

TEST(UpdateAffectsSource, DirectedInsert) {
  const auto affects = [](vidx_t du, vidx_t dv) {
    return update_affects_source(du, dv, UpdateKind::kInsert,
                                 /*directed=*/true);
  };
  // Unreachable tail: the new arc is invisible from s.
  EXPECT_FALSE(affects(-1, -1));
  EXPECT_FALSE(affects(-1, 3));
  // Reachable tail, unreachable head: v becomes reachable.
  EXPECT_TRUE(affects(2, -1));
  // Arc into a deeper level: new shortest paths (gap 1) or a shortcut
  // (gap >= 2 — the case the naive |du - dv| <= 1 rule gets wrong).
  EXPECT_TRUE(affects(1, 2));
  EXPECT_TRUE(affects(0, 5));
  // Arc into the same or a shallower level: outside every shortest path.
  EXPECT_FALSE(affects(2, 2));
  EXPECT_FALSE(affects(3, 1));
}

TEST(UpdateAffectsSource, DirectedDelete) {
  const auto affects = [](vidx_t du, vidx_t dv) {
    return update_affects_source(du, dv, UpdateKind::kDelete,
                                 /*directed=*/true);
  };
  // Only DAG arcs (exactly one level down) ever carried shortest paths.
  EXPECT_TRUE(affects(0, 1));
  EXPECT_TRUE(affects(4, 5));
  EXPECT_FALSE(affects(-1, 2));
  EXPECT_FALSE(affects(2, 2));
  EXPECT_FALSE(affects(2, 1));
  EXPECT_FALSE(affects(0, 5));
  EXPECT_FALSE(affects(3, -1));
}

TEST(UpdateAffectsSource, Undirected) {
  for (const UpdateKind kind : {UpdateKind::kInsert, UpdateKind::kDelete}) {
    // Equal depths (including both-unreachable): no orientation qualifies.
    EXPECT_FALSE(update_affects_source(2, 2, kind, false));
    EXPECT_FALSE(update_affects_source(-1, -1, kind, false));
    // Any depth gap: the lower endpoint reaches one level into the other.
    EXPECT_TRUE(update_affects_source(1, 2, kind, false));
    EXPECT_TRUE(update_affects_source(2, 1, kind, false));
    EXPECT_TRUE(update_affects_source(3, -1, kind, false));
    EXPECT_TRUE(update_affects_source(-1, 3, kind, false));
    EXPECT_TRUE(update_affects_source(0, 4, kind, false));
  }
}

TEST(RankVertices, BreaksTiesByIndex) {
  const std::vector<bc_t> bc = {1.0, 3.0, 1.0, 3.0, 0.0};
  EXPECT_EQ(rank_vertices(bc, 5), (std::vector<vidx_t>{1, 3, 0, 2, 4}));
  EXPECT_EQ(rank_vertices(bc, 2), (std::vector<vidx_t>{1, 3}));
  EXPECT_TRUE(rank_vertices(bc, 0).empty());
}

TEST(ServeEngine, ColdQueryMatchesScratchExactBitwise) {
  ServeEngine engine(path5());
  QueryStats stats;
  const std::vector<bc_t>& served = engine.query_bc(&stats);
  EXPECT_EQ(served, scratch_exact(engine.graph()));
  EXPECT_EQ(stats.recomputed, 5);
  EXPECT_EQ(stats.cached, 0);
  EXPECT_GT(stats.device_seconds, 0.0);

  // Second query: everything cached, nothing recomputed.
  QueryStats again;
  engine.query_bc(&again);
  EXPECT_EQ(again.recomputed, 0);
  EXPECT_EQ(again.cached, 5);
  EXPECT_EQ(again.device_seconds, 0.0);
  EXPECT_EQ(engine.counters().queries, 2u);
}

TEST(ServeEngine, NoopUpdatesLeaveCacheWarm) {
  ServeEngine engine(path5());
  engine.query_bc();
  ASSERT_EQ(engine.valid_blocks(), 5);

  // Insert of a present edge, delete of an absent one, self-loop: no-ops.
  EXPECT_FALSE(engine.insert_edge(0, 1).applied);
  EXPECT_FALSE(engine.remove_edge(0, 3).applied);
  EXPECT_FALSE(engine.insert_edge(2, 2).applied);
  EXPECT_EQ(engine.valid_blocks(), 5);
  EXPECT_EQ(engine.counters().epoch, 0u);
  EXPECT_EQ(engine.counters().noop_updates, 3u);
  EXPECT_EQ(engine.counters().updates, 0u);
}

TEST(ServeEngine, DirectedUpdateInvalidatesOnlyTheCone) {
  // Chain 0 -> 1 -> 2 -> 3, vertex 4 isolated. Insert arc (2, 4): only
  // sources that reach 2 (namely 0, 1, 2) can be affected; 3 and 4 never
  // see the new arc.
  ServeEngine engine(chain4_plus_isolated());
  engine.query_bc();
  const UpdateStats s = engine.insert_edge(2, 4);
  EXPECT_TRUE(s.applied);
  EXPECT_EQ(s.invalidated, 3);
  EXPECT_EQ(s.valid, 2);
  EXPECT_FALSE(engine.block_valid(0));
  EXPECT_FALSE(engine.block_valid(1));
  EXPECT_FALSE(engine.block_valid(2));
  EXPECT_TRUE(engine.block_valid(3));
  EXPECT_TRUE(engine.block_valid(4));

  // The next full query pays exactly the invalidated blocks and is again
  // bit-identical to scratch.
  QueryStats stats;
  const std::vector<bc_t>& served = engine.query_bc(&stats);
  EXPECT_EQ(stats.recomputed, 3);
  EXPECT_EQ(stats.cached, 2);
  EXPECT_EQ(served, scratch_exact(engine.graph()));
}

TEST(ServeEngine, InsertThenDeleteRoundTripsBitwise) {
  ServeEngine engine(path5());
  const std::vector<bc_t> before = engine.query_bc();  // copy
  ASSERT_TRUE(engine.insert_edge(0, 4).applied);
  const std::vector<bc_t> mutated = engine.query_bc();
  EXPECT_NE(before, mutated);
  EXPECT_EQ(mutated, scratch_exact(engine.graph()));
  ASSERT_TRUE(engine.remove_edge(0, 4).applied);
  EXPECT_EQ(engine.query_bc(), before);
  EXPECT_EQ(engine.counters().epoch, 2u);
}

TEST(ServeEngine, ApproxQueryInvalidatesComponentMapOnUpdate) {
  // Two components: path 0-1-2 and edge 3-4. The component sampler's map
  // must be recomputed after the update that merges them — the PR 6 approx
  // driver cached this map with no invalidation hook; ServeEngine routes it
  // through graph::ComponentCache.
  graph::EdgeList g(5, false);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  g.canonicalize();
  ServeEngine engine(std::move(g));
  ASSERT_EQ(engine.options().sampler, approx::SamplerKind::kComponent);

  const approx::ApproxResult r1 = engine.query_approx(0.5, 0.2);
  engine.query_approx(0.5, 0.2);
  EXPECT_EQ(engine.component_recomputes(), 1u)
      << "same epoch: the component map must be computed once and reused";

  ASSERT_TRUE(engine.insert_edge(2, 3).applied);
  const approx::ApproxResult r2 = engine.query_approx(0.5, 0.2);
  EXPECT_EQ(engine.component_recomputes(), 2u)
      << "the update must invalidate the cached component map";
  EXPECT_EQ(r1.bc.size(), r2.bc.size());

  // Repeatability within the new epoch (fixed seed, fresh device per query).
  const approx::ApproxResult r3 = engine.query_approx(0.5, 0.2);
  EXPECT_EQ(r2.bc, r3.bc);
  EXPECT_EQ(engine.component_recomputes(), 2u);
}

TEST(ServeEngine, ApproxIntervalsCoverServedExact) {
  ServeEngine engine(path5());
  const approx::ApproxResult approx = engine.query_approx(0.5, 0.1);
  const std::vector<bc_t>& exact = engine.query_bc();
  ASSERT_EQ(approx.bc.size(), exact.size());
  for (std::size_t v = 0; v < exact.size(); ++v) {
    EXPECT_LE(std::abs(approx.bc[v] - exact[v]), approx.half_width[v])
        << "vertex " << v;
  }
}

TEST(Session, TranscriptIsDeterministicAcrossPoolWidths) {
  const auto transcript = [](unsigned width, bool json) {
    sim::ExecutorPool::instance().set_threads(width);
    std::istringstream script(
        "bc 3\ninsert 0 3\ntop 3\napprox 0.5\ndelete 1 2\nbc 3\nstats\n");
    std::ostringstream out;
    run_session(path5(), {.json = json, .top = 3}, script, out);
    sim::ExecutorPool::instance().set_threads(1);
    return out.str();
  };
  for (const bool json : {false, true}) {
    const std::string serial = transcript(1, json);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, transcript(8, json)) << "json=" << json;
  }
}

TEST(Session, MalformedLinesThrowBeforeAnyOutput) {
  const auto expect_usage_error = [](const char* script_text) {
    std::istringstream script(script_text);
    std::ostringstream out;
    EXPECT_THROW(run_session(path5(), {}, script, out), UsageError)
        << script_text;
    EXPECT_TRUE(out.str().empty())
        << "parse errors must precede all output, got: " << out.str();
  };
  expect_usage_error("bogus\n");
  expect_usage_error("bc 2\ninsert 3\n");       // arity
  expect_usage_error("insert 0 99\n");          // vertex out of range
  expect_usage_error("approx 2.0\n");           // epsilon outside (0, 1)
  expect_usage_error("top -1\n");               // negative count
  expect_usage_error("insert 0 1.5\n");         // trailing garbage
  expect_usage_error("stats now\n");            // arity on stats
}

TEST(Session, CommentsAndBlankLinesAreSkipped) {
  std::istringstream script("# header\n\n   \nstats\n");
  std::ostringstream out;
  const ServeEngine::Counters c = run_session(path5(), {}, script, out);
  EXPECT_EQ(c.queries, 0u);
  // hello + stats lines only.
  const std::string transcript = out.str();
  EXPECT_EQ(std::count(transcript.begin(), transcript.end(), '\n'), 2);
}

}  // namespace
}  // namespace turbobc::serve
