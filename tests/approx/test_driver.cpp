#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "approx/driver.hpp"
#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "generators/generators.hpp"
#include "gpusim/executor.hpp"
#include "qa/oracle.hpp"

namespace turbobc::approx {
namespace {

ApproxResult run_at_width(const graph::EdgeList& graph,
                          const ApproxOptions& options, unsigned width) {
  auto& pool = sim::ExecutorPool::instance();
  const unsigned before = pool.threads();
  pool.set_threads(width);
  sim::Device device;
  device.set_keep_launch_records(false);
  ApproxResult r = run_adaptive(device, graph, options);
  pool.set_threads(before);
  return r;
}

void expect_results_identical(const ApproxResult& a, const ApproxResult& b) {
  EXPECT_EQ(a.bc, b.bc);
  EXPECT_EQ(a.half_width, b.half_width);
  EXPECT_EQ(a.sources_used, b.sources_used);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.device_seconds, b.device_seconds);
  EXPECT_EQ(a.peak_device_bytes, b.peak_device_bytes);
  ASSERT_EQ(a.waves.size(), b.waves.size());
  for (std::size_t i = 0; i < a.waves.size(); ++i) {
    EXPECT_EQ(a.waves[i].sources, b.waves[i].sources);
    EXPECT_EQ(a.waves[i].device_seconds, b.waves[i].device_seconds);
    EXPECT_EQ(a.waves[i].peak_device_bytes, b.waves[i].peak_device_bytes);
    EXPECT_EQ(a.waves[i].max_half_width, b.waves[i].max_half_width);
    EXPECT_EQ(a.waves[i].converged, b.waves[i].converged);
  }
}

TEST(Driver, ParseEngine) {
  EXPECT_EQ(parse_engine("scalar"), Engine::kScalar);
  EXPECT_EQ(parse_engine("batched"), Engine::kBatched);
  EXPECT_THROW(parse_engine("gpu"), UsageError);
}

// The ISSUE's determinism contract, enforced by ctest: the WHOLE result —
// estimates, half-widths, wave accounting, modeled clock — must be
// byte-identical at pool width 1 and 8.
TEST(Driver, BitIdenticalAcrossPoolWidths) {
  const auto el = gen::mycielski(6);
  ApproxOptions opt;
  opt.seed = 42;
  opt.max_sources = 96;
  const ApproxResult serial = run_at_width(el, opt, 1);
  const ApproxResult parallel = run_at_width(el, opt, 8);
  expect_results_identical(serial, parallel);
}

TEST(Driver, BitIdenticalAcrossPoolWidthsDegreeSampler) {
  const auto el = gen::preferential_attachment({.n = 120, .m_attach = 3,
                                                .directed = false, .seed = 5});
  ApproxOptions opt;
  opt.seed = 7;
  opt.sampler = SamplerKind::kDegree;
  opt.max_sources = 64;
  expect_results_identical(run_at_width(el, opt, 1),
                           run_at_width(el, opt, 8));
}

TEST(Driver, EnginesAgreeOnEstimates) {
  // Scalar fan-out and batched lanes consume the same pivot sequence and
  // must land on the same estimates (same sums, modulo float fold order).
  const auto el = gen::small_world({.n = 90, .k = 4, .rewire_p = 0.2,
                                    .seed = 31});
  ApproxOptions opt;
  opt.seed = 11;
  opt.max_sources = 48;
  opt.engine = Engine::kScalar;
  const ApproxResult scalar = run_at_width(el, opt, 1);
  opt.engine = Engine::kBatched;
  opt.batch_size = 8;
  const ApproxResult batched = run_at_width(el, opt, 1);

  EXPECT_EQ(scalar.sources_used, batched.sources_used);
  EXPECT_EQ(scalar.converged, batched.converged);
  ASSERT_EQ(scalar.bc.size(), batched.bc.size());
  for (std::size_t v = 0; v < scalar.bc.size(); ++v) {
    const double scale = std::max(std::abs(scalar.bc[v]), 1.0);
    EXPECT_NEAR(scalar.bc[v], batched.bc[v], 1e-9 * scale) << "vertex " << v;
  }
}

TEST(Driver, WaveAccountingFoldsToTotals) {
  const auto el = gen::mycielski(6);
  ApproxOptions opt;
  opt.seed = 3;
  opt.max_sources = 80;
  const ApproxResult r = run_at_width(el, opt, 1);
  ASSERT_FALSE(r.waves.empty());

  double seconds = 0.0;
  std::size_t peak = 0;
  vidx_t sources = 0;
  for (const WaveStats& w : r.waves) {
    seconds += w.device_seconds;
    peak = std::max(peak, w.peak_device_bytes);
    sources += w.sources;
    EXPECT_GT(w.device_seconds, 0.0);
  }
  EXPECT_EQ(seconds, r.device_seconds) << "left-fold must match exactly";
  EXPECT_EQ(peak, r.peak_device_bytes);
  EXPECT_EQ(sources, r.sources_used);
  EXPECT_EQ(r.waves.back().converged, r.converged);
  EXPECT_EQ(r.peak_device_bytes,
            qa::expected_approx_peak_bytes(bc::Variant::kScCsc,
                                           el.num_vertices(),
                                           el.num_arcs()));
}

TEST(Driver, WavesDoubleAndClampToBudget) {
  const auto el = gen::erdos_renyi({.n = 300, .arcs = 1500, .directed = false,
                                    .seed = 17});
  ApproxOptions opt;
  opt.seed = 2;
  opt.epsilon = 1e-6;  // unreachable: exhaust the budget
  opt.max_sources = 100;
  const ApproxResult r = run_at_width(el, opt, 1);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sources_used, 100);
  ASSERT_EQ(r.waves.size(), 3u);  // 32, 64, then the 4-pivot remainder
  EXPECT_EQ(r.waves[0].sources, 32);
  EXPECT_EQ(r.waves[1].sources, 64);
  EXPECT_EQ(r.waves[2].sources, 4);
}

TEST(Driver, EasyTargetConvergesEarly) {
  const auto el = gen::mycielski(7);  // n = 95
  ApproxOptions opt;
  opt.seed = 8;
  opt.epsilon = 0.9;  // one wave of samples is plenty
  const ApproxResult r = run_at_width(el, opt, 1);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.sources_used, el.num_vertices());
  EXPECT_LE(r.max_half_width, 0.9 * r.norm);
}

TEST(Driver, IntervalsCoverExactBc) {
  // delta = 0.1 leaves a failure allowance, but the run is deterministic
  // for a fixed seed — this seed's intervals do cover (the fuzz oracle
  // checks the same invariant across the whole corpus).
  const auto el = gen::mycielski(6);
  ApproxOptions opt;
  opt.seed = 42;
  opt.max_sources = 96;
  const ApproxResult r = run_at_width(el, opt, 1);
  const std::vector<bc_t> exact = baseline::brandes_bc(el);
  ASSERT_EQ(r.bc.size(), exact.size());
  for (std::size_t v = 0; v < exact.size(); ++v) {
    const double err = std::abs(static_cast<double>(exact[v]) -
                                static_cast<double>(r.bc[v]));
    EXPECT_LE(err, r.half_width[v] + 1e-9 * r.norm) << "vertex " << v;
  }
}

TEST(Driver, TopKModeStopsEarlyOnSeparatedRanks) {
  // A star's top-1 gap is the full BC ceiling: the leaves are never
  // interior to a shortest path (zero-variance zero samples) while the hub
  // collects nearly the whole norm. Rank stability fires within the first
  // waves, long before the per-vertex epsilon target could.
  graph::EdgeList star(51, /*directed=*/false);
  for (vidx_t v = 1; v < 51; ++v) star.add_edge(0, v);
  star.symmetrize();
  ApproxOptions opt;
  opt.seed = 19;
  opt.top_k = 1;
  opt.epsilon = 0.05;
  const ApproxResult r = run_at_width(star, opt, 1);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.sources_used, star.num_vertices());

  // The stable top-1 is the hub, and its estimate covers the exact value.
  const std::vector<bc_t> exact = baseline::brandes_bc(star);
  const auto best = static_cast<std::size_t>(
      std::max_element(r.bc.begin(), r.bc.end()) - r.bc.begin());
  EXPECT_EQ(best, 0u);
  EXPECT_LE(std::abs(static_cast<double>(exact[0]) -
                     static_cast<double>(r.bc[0])),
            r.half_width[0] + 1e-9 * r.norm);
}

TEST(Driver, SingleVertexGraphDoesNotCrash) {
  // Budget n = 1 can never reach the estimator's 2-sample minimum, so the
  // run honestly reports converged = false — with the exact (trivial)
  // answer and a zero half-width (the sample range is 0 at n = 1).
  graph::EdgeList lone(1, /*directed=*/false);
  ApproxOptions opt;
  opt.seed = 1;
  const ApproxResult r = run_at_width(lone, opt, 1);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sources_used, 1);
  ASSERT_EQ(r.bc.size(), 1u);
  EXPECT_EQ(r.bc[0], 0.0);
  EXPECT_EQ(r.half_width[0], 0.0);
}

}  // namespace
}  // namespace turbobc::approx
