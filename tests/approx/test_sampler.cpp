#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "approx/sampler.hpp"
#include "common/error.hpp"
#include "generators/generators.hpp"
#include "graph/components.hpp"

namespace turbobc::approx {
namespace {

using graph::EdgeList;

EdgeList star_graph(vidx_t leaves) {
  EdgeList el(leaves + 1, /*directed=*/false);
  for (vidx_t i = 1; i <= leaves; ++i) el.add_edge(0, i);
  el.symmetrize();
  return el;
}

EdgeList two_components() {
  // Triangle {0,1,2} plus a 4-path {3,4,5,6}.
  EdgeList el(7, /*directed=*/false);
  el.add_edge(0, 1);
  el.add_edge(1, 2);
  el.add_edge(2, 0);
  el.add_edge(3, 4);
  el.add_edge(4, 5);
  el.add_edge(5, 6);
  el.symmetrize();
  return el;
}

TEST(Sampler, ParseRoundTrip) {
  EXPECT_EQ(parse_sampler("uniform"), SamplerKind::kUniform);
  EXPECT_EQ(parse_sampler("degree"), SamplerKind::kDegree);
  EXPECT_EQ(parse_sampler("component"), SamplerKind::kComponent);
  EXPECT_STREQ(sampler_name(SamplerKind::kUniform), "uniform");
  EXPECT_STREQ(sampler_name(SamplerKind::kDegree), "degree");
  EXPECT_STREQ(sampler_name(SamplerKind::kComponent), "component");
}

TEST(Sampler, ParseUnknownThrowsUsageError) {
  EXPECT_THROW(parse_sampler("random"), UsageError);
  EXPECT_THROW(parse_sampler(""), UsageError);
}

class SamplerKinds : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(SamplerKinds, ReproducibleFromSeedAlone) {
  const auto el = gen::mycielski(5);
  PivotSampler a(el, GetParam(), 7);
  PivotSampler b(el, GetParam(), 7);
  std::vector<vidx_t> sa, sb;
  std::vector<double> wa, wb;
  a.draw(200, sa, wa);
  b.draw(200, sb, wb);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(wa, wb);

  PivotSampler c(el, GetParam(), 8);
  std::vector<vidx_t> sc;
  std::vector<double> wc;
  c.draw(200, sc, wc);
  EXPECT_NE(sa, sc) << "different seed should move the pivot sequence";
}

TEST_P(SamplerKinds, DrawAppendsContinuously) {
  // 5 + 5 draws must equal one 10-draw: wave chunking cannot change the
  // pivot sequence (this is what makes resume/restart deterministic).
  const auto el = gen::mycielski(5);
  PivotSampler chunked(el, GetParam(), 3);
  PivotSampler whole(el, GetParam(), 3);
  std::vector<vidx_t> s1, s2;
  std::vector<double> w1, w2;
  chunked.draw(5, s1, w1);
  chunked.draw(5, s1, w1);
  whole.draw(10, s2, w2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(w1, w2);
}

TEST_P(SamplerKinds, DrawsInRangeAndWeightsBounded) {
  const auto el = gen::erdos_renyi({.n = 64, .arcs = 300, .directed = true,
                                    .seed = 11});
  PivotSampler s(el, GetParam(), 5);
  std::vector<vidx_t> sources;
  std::vector<double> weights;
  s.draw(500, sources, weights);
  ASSERT_EQ(sources.size(), 500u);
  ASSERT_EQ(weights.size(), 500u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_GE(sources[i], 0);
    EXPECT_LT(sources[i], el.num_vertices());
    EXPECT_GT(weights[i], 0.0);
    EXPECT_LE(weights[i], s.max_weight());
  }
}

TEST_P(SamplerKinds, WeightsAreUnbiased) {
  // E[w] = sum_s p_s * (1/p_s) = n for every draw distribution; the sample
  // mean over many draws must land near n.
  const auto el = gen::preferential_attachment({.n = 60, .m_attach = 2,
                                                .directed = false, .seed = 4});
  PivotSampler s(el, GetParam(), 1);
  std::vector<vidx_t> sources;
  std::vector<double> weights;
  s.draw(20000, sources, weights);
  double mean = 0.0;
  for (const double w : weights) mean += w;
  mean /= static_cast<double>(weights.size());
  EXPECT_NEAR(mean, 60.0, 6.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SamplerKinds,
                         ::testing::Values(SamplerKind::kUniform,
                                           SamplerKind::kDegree,
                                           SamplerKind::kComponent),
                         [](const auto& info) {
                           return sampler_name(info.param);
                         });

TEST(Sampler, UniformWeightIsN) {
  const auto el = gen::mycielski(5);
  PivotSampler s(el, SamplerKind::kUniform, 2);
  std::vector<vidx_t> sources;
  std::vector<double> weights;
  s.draw(100, sources, weights);
  for (const double w : weights) {
    EXPECT_EQ(w, static_cast<double>(el.num_vertices()));
  }
  EXPECT_EQ(s.max_weight(), static_cast<double>(el.num_vertices()));
}

TEST(Sampler, DegreeWeightMatchesInverseProbability) {
  const auto el = gen::erdos_renyi({.n = 40, .arcs = 160, .directed = true,
                                    .seed = 21});
  const auto deg = el.out_degrees();
  const double total = static_cast<double>(el.num_arcs()) +
                       static_cast<double>(el.num_vertices());
  PivotSampler s(el, SamplerKind::kDegree, 6);
  std::vector<vidx_t> sources;
  std::vector<double> weights;
  s.draw(300, sources, weights);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const double mass = static_cast<double>(deg[sources[i]]) + 1.0;
    EXPECT_DOUBLE_EQ(weights[i], total / mass);
  }
}

TEST(Sampler, DegreePrefersHubs) {
  const auto el = star_graph(49);
  PivotSampler s(el, SamplerKind::kDegree, 9);
  std::vector<vidx_t> sources;
  std::vector<double> weights;
  s.draw(2000, sources, weights);
  std::map<vidx_t, int> freq;
  for (const vidx_t v : sources) ++freq[v];
  int best_leaf = 0;
  for (const auto& [v, c] : freq) {
    if (v != 0) best_leaf = std::max(best_leaf, c);
  }
  EXPECT_GT(freq[0], 4 * best_leaf)
      << "the hub's draw mass must dominate any leaf's";
}

TEST(Sampler, ComponentWeightsAndCoverage) {
  const auto el = two_components();
  PivotSampler s(el, SamplerKind::kComponent, 13);
  std::vector<vidx_t> sources;
  std::vector<double> weights;
  s.draw(400, sources, weights);
  bool saw_triangle = false, saw_path = false;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sources[i] <= 2) {
      EXPECT_DOUBLE_EQ(weights[i], 2.0 * 3.0);  // n_comp * |C|
      saw_triangle = true;
    } else {
      EXPECT_DOUBLE_EQ(weights[i], 2.0 * 4.0);
      saw_path = true;
    }
  }
  EXPECT_TRUE(saw_triangle);
  EXPECT_TRUE(saw_path) << "component-uniform draws must not starve either";
  EXPECT_EQ(s.max_weight(), 8.0);
}

}  // namespace
}  // namespace turbobc::approx
