// Regression suite for graph::ComponentCache and the ApproxOptions
// component-map contract. The PR 6 approx driver documented that the
// caller-supplied map must match the graph but offered no invalidation
// hook, so a caller that mutated the graph and re-sampled kept stratifying
// by the STALE map. These tests pin the cache's memoization semantics and
// the mutate-then-resample workflow that exposed the gap.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "approx/driver.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "graph/components.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {
namespace {

/// Two undirected components: path 0-1-2 and edge 3-4.
EdgeList two_components() {
  EdgeList g(5, false);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  g.canonicalize();
  return g;
}

TEST(ComponentCache, MemoizesUntilInvalidated) {
  EdgeList g = two_components();
  ComponentCache cache;
  EXPECT_FALSE(cache.valid());
  EXPECT_EQ(cache.recomputes(), 0u);

  const Components& first = cache.get(g);
  EXPECT_EQ(first.count, 2);
  EXPECT_TRUE(cache.valid());
  EXPECT_EQ(cache.recomputes(), 1u);

  // Repeated gets reuse the same sweep (and the same object).
  EXPECT_EQ(&cache.get(g), &first);
  EXPECT_EQ(cache.recomputes(), 1u);

  cache.invalidate();
  EXPECT_FALSE(cache.valid());
  EXPECT_EQ(cache.get(g).count, 2);
  EXPECT_EQ(cache.recomputes(), 2u);
}

TEST(ComponentCache, MutateThenResampleSeesTheNewStructure) {
  EdgeList g = two_components();
  ComponentCache cache;
  ASSERT_EQ(cache.get(g).count, 2);

  // Mutate: bridge the two components. The cached map is now stale — the
  // invalidation hook is what keeps the next get honest.
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.canonicalize();
  cache.invalidate();

  const Components& after = cache.get(g);
  EXPECT_EQ(after.count, 1);
  EXPECT_EQ(after.sizes[static_cast<std::size_t>(after.largest())], 5);
  EXPECT_EQ(cache.recomputes(), 2u);

  // Re-sample with the refreshed map: the component sampler must accept it
  // and the intervals must cover the exact values of the MUTATED graph.
  approx::ApproxOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.sampler = approx::SamplerKind::kComponent;
  opt.components = &after;
  sim::Device device;
  const approx::ApproxResult r = approx::run_adaptive(device, g, opt);

  sim::Device exact_device;
  bc::TurboBC algo(exact_device, g, {});
  const std::vector<bc_t> exact = algo.run_exact().bc;
  ASSERT_EQ(r.bc.size(), exact.size());
  for (std::size_t v = 0; v < exact.size(); ++v) {
    EXPECT_LE(std::abs(r.bc[v] - exact[v]), r.half_width[v])
        << "vertex " << v << ": stale-map symptoms — interval misses exact";
  }
}

TEST(ComponentCache, MoveKeepsTheCachedSweep) {
  EdgeList g = two_components();
  ComponentCache cache;
  cache.get(g);
  ComponentCache moved = std::move(cache);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.recomputes(), 1u);
  EXPECT_EQ(moved.get(g).count, 2);
}

}  // namespace
}  // namespace turbobc::graph
