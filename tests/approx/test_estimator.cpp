#include <gtest/gtest.h>

#include <cmath>

#include "approx/estimator.hpp"

namespace turbobc::approx {
namespace {

bc::TurboBC::MomentResult wave_of(std::vector<bc_t> sum,
                                  std::vector<bc_t> sumsq) {
  bc::TurboBC::MomentResult m;
  m.sum = std::move(sum);
  m.sumsq = std::move(sumsq);
  return m;
}

/// k identical samples of value x per vertex: sum = k*x, sumsq = k*x^2.
bc::TurboBC::MomentResult constant_wave(const std::vector<double>& values,
                                        std::size_t k) {
  std::vector<bc_t> sum(values.size()), sumsq(values.size());
  for (std::size_t v = 0; v < values.size(); ++v) {
    sum[v] = static_cast<bc_t>(values[v] * static_cast<double>(k));
    sumsq[v] = static_cast<bc_t>(values[v] * values[v] *
                                 static_cast<double>(k));
  }
  return wave_of(std::move(sum), std::move(sumsq));
}

TEST(Estimator, NormAndRangeFormulas) {
  // Undirected: cscale = 1/2 halves both the BC ceiling and the range.
  IncrementalEstimator undirected({.epsilon = 0.1, .delta = 0.1, .top_k = 0,
                                   .num_vertices = 10, .directed = false,
                                   .max_weight = 10.0});
  EXPECT_DOUBLE_EQ(undirected.norm(), 0.5 * 9 * 8);
  EXPECT_DOUBLE_EQ(undirected.sample_range(), 10.0 * 0.5 * 8);

  IncrementalEstimator directed({.epsilon = 0.1, .delta = 0.1, .top_k = 0,
                                 .num_vertices = 10, .directed = true,
                                 .max_weight = 10.0});
  EXPECT_DOUBLE_EQ(directed.norm(), 9.0 * 8.0);
  EXPECT_DOUBLE_EQ(directed.sample_range(), 10.0 * 8.0);
}

TEST(Estimator, TinyGraphsDegenerateGracefully) {
  // n = 2: no vertex can be interior to a shortest path, so the sample
  // range is 0 and the norm clamps to 1 — two samples converge instantly.
  IncrementalEstimator est({.epsilon = 0.05, .delta = 0.1, .top_k = 0,
                            .num_vertices = 2, .directed = false,
                            .max_weight = 2.0});
  EXPECT_DOUBLE_EQ(est.sample_range(), 0.0);
  EXPECT_DOUBLE_EQ(est.norm(), 1.0);
  est.fold_wave(constant_wave({0.0, 0.0}, 2), 2);
  EXPECT_TRUE(est.check_stop());
  EXPECT_DOUBLE_EQ(est.max_half_width(), 0.0);
}

TEST(Estimator, NoStopBeforeTwoSamples) {
  // The Bernstein bound divides by k-1; a single sample can never fire.
  IncrementalEstimator est({.epsilon = 100.0, .delta = 0.1, .top_k = 0,
                            .num_vertices = 4, .directed = false,
                            .max_weight = 4.0});
  est.fold_wave(constant_wave({1.0, 1.0, 1.0, 1.0}, 1), 1);
  EXPECT_FALSE(est.check_stop());
  est.fold_wave(constant_wave({1.0, 1.0, 1.0, 1.0}, 1), 1);
  EXPECT_TRUE(est.check_stop());
}

TEST(Estimator, EstimatesAreSampleMeans) {
  IncrementalEstimator est({.epsilon = 0.05, .delta = 0.1, .top_k = 0,
                            .num_vertices = 2, .directed = true,
                            .max_weight = 2.0});
  est.fold_wave(wave_of({2.0, 4.0}, {4.0, 16.0}), 2);
  est.fold_wave(wave_of({4.0, 2.0}, {16.0, 4.0}), 2);
  EXPECT_EQ(est.samples(), 4u);
  const auto e = est.estimates();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e[0], 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(e[1], 6.0 / 4.0);
}

TEST(Estimator, HalfWidthsShrinkWithSamples) {
  IncrementalEstimator est({.epsilon = 1e-9, .delta = 0.1, .top_k = 0,
                            .num_vertices = 8, .directed = false,
                            .max_weight = 8.0});
  const std::vector<double> values = {3.0, 1.0, 0.5, 0.0, 2.0, 2.0, 1.0, 0.0};
  est.fold_wave(constant_wave(values, 16), 16);
  est.check_stop();
  const double h1 = est.max_half_width();
  est.fold_wave(constant_wave(values, 240), 240);
  est.check_stop();
  const double h2 = est.max_half_width();
  EXPECT_GT(h1, 0.0);
  EXPECT_LT(h2, h1);
  // Zero sample variance: the Bernstein bound's variance term vanishes, so
  // the half-width must beat Hoeffding's R/sqrt(k) scaling by a wide margin.
  const double hoeffding =
      est.sample_range() *
      std::sqrt(std::log(2.0 / (0.1 / 4.0 / 16.0)) / (2.0 * 256.0));
  EXPECT_LT(h2, hoeffding);
}

TEST(Estimator, ZeroVarianceConvergesUnderEpsilon) {
  IncrementalEstimator est({.epsilon = 0.05, .delta = 0.1, .top_k = 0,
                            .num_vertices = 16, .directed = false,
                            .max_weight = 16.0});
  const std::vector<double> values(16, 1.0);
  bool converged = false;
  for (int wave = 0; wave < 40 && !converged; ++wave) {
    est.fold_wave(constant_wave(values, 64), 64);
    converged = est.check_stop();
  }
  EXPECT_TRUE(converged);
  EXPECT_LE(est.max_half_width(), 0.05 * est.norm());
}

TEST(Estimator, TopKStopsOnSeparatedValues) {
  // Vertex 0 is far above the rest; top-1 rank stability should fire long
  // before every vertex's interval shrinks to epsilon * norm.
  IncrementalEstimator topk({.epsilon = 0.05, .delta = 0.1, .top_k = 1,
                             .num_vertices = 6, .directed = false,
                             .max_weight = 6.0});
  IncrementalEstimator full({.epsilon = 0.05, .delta = 0.1, .top_k = 0,
                             .num_vertices = 6, .directed = false,
                             .max_weight = 6.0});
  const std::vector<double> values = {9.0, 0.5, 0.4, 0.3, 0.2, 0.1};
  int topk_waves = 0, full_waves = 0;
  for (int wave = 0; wave < 64; ++wave) {
    topk.fold_wave(constant_wave(values, 8), 8);
    ++topk_waves;
    if (topk.check_stop()) break;
  }
  for (int wave = 0; wave < 64; ++wave) {
    full.fold_wave(constant_wave(values, 8), 8);
    ++full_waves;
    if (full.check_stop()) break;
  }
  EXPECT_LE(topk_waves, full_waves);
  const auto e = topk.estimates();
  EXPECT_DOUBLE_EQ(e[0], 9.0);
}

TEST(Estimator, ChecksCountTheDeltaSchedule) {
  IncrementalEstimator est({.epsilon = 1e-9, .delta = 0.1, .top_k = 0,
                            .num_vertices = 4, .directed = false,
                            .max_weight = 4.0});
  EXPECT_EQ(est.checks(), 0u);
  est.fold_wave(constant_wave({1, 1, 1, 1}, 4), 4);
  est.check_stop();
  est.check_stop();
  EXPECT_EQ(est.checks(), 2u);
}

}  // namespace
}  // namespace turbobc::approx
